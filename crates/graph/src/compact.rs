//! Compact graph backend: delta-encoded adjacency over one byte image.
//!
//! [`CompactGraph`] answers the full [`GraphAccess`] surface from a single
//! contiguous byte buffer — either built in memory from a
//! [`KnowledgeGraph`] or mapped/read zero-copy from the on-disk format
//! written by [`crate::io::save_compact`]. The layout trades the CSR's two
//! parallel `u32` arrays (8 bytes per stored edge) and the interner's
//! doubled string storage for:
//!
//! - **varint/delta adjacency** ([`crate::varint`]): each node's
//!   label-sorted run compresses to ~2–3 bytes per edge on realistic
//!   graphs;
//! - **degree-ordered run placement**: runs are laid out in descending
//!   external-degree order, so the hub nodes random walks touch most
//!   cluster in the first pages of the stream. Only the *placement* is
//!   permuted — every id crossing the [`GraphAccess`] boundary is the
//!   original external id, which keeps rankings id-for-id identical to
//!   [`KnowledgeGraph`] (`tests/compact_parity.rs` pins this);
//! - **flat name storage**: one UTF-8 pool plus offsets, with a
//!   name-sorted id array for binary-search lookup, replacing the hash
//!   map + doubled strings of the interner.
//!
//! The same byte image is also the file format (see the format
//! description below), so building, saving and loading all funnel through
//! one encoder and one parser — which is what makes the format's
//! golden-file test meaningful.
//!
//! # Byte image layout (format version 1)
//!
//! ```text
//! [0..8)    magic  "NCKGRPH1"
//! [8..12)   version (u32 LE)
//! [12..16)  section count (u32 LE)
//! [16..24)  checksum (u64 LE) over every byte from offset 24 to EOF
//! [24..)    section table: count × { kind u32, pad u32, offset u64, len u64 }
//! then the sections, each 8-byte aligned, in kind order:
//!   META                num_nodes, num_labels, num_types (u32) +
//!                       num_stored_edges, num_logical_edges (u64)
//!   ADJ_OFFSETS         (n+1) × u32 byte offsets into ADJ, internal order
//!   ADJ                 concatenated varint runs (external ids)
//!   DEGREES             n × u32, external order
//!   PERM / INV_PERM     n × u32 external↔internal permutation
//!   NAME_OFFSETS/BYTES  (n+1) × u32 into a UTF-8 pool, external order
//!   NAME_SORT           n × u32 external ids sorted by name
//!   TYPES               n × u32 (u32::MAX = untyped)
//!   LABEL_*             registry: name pool, inverse ids, direction flags,
//!                       per-label stored-edge counts (u64)
//!   TYPE_*              taxonomy: name pool, flattened parent lists
//! ```
//!
//! All multi-byte values are little-endian and read via `from_le_bytes`,
//! so the loader never reinterprets raw memory and stays within
//! `#![deny(unsafe_code)]` (the one exception is the tiny `mmap` shim in
//! [`crate::io::mmap`]).

use crate::access::GraphAccess;
use crate::error::GraphError;
use crate::graph::KnowledgeGraph;
use crate::ids::{EdgeLabelId, NodeId, NodeTypeId};
use crate::schema::EdgeLabelRegistry;
use crate::taxonomy::Taxonomy;
use crate::varint::{encode_run, RunDecoder};
use std::borrow::Cow;
use std::fmt;
use std::ops::Range;

/// File magic: "NCKGRPH1".
pub const MAGIC: [u8; 8] = *b"NCKGRPH1";
/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Section identifiers; every section is required.
const SEC_META: u32 = 1;
const SEC_ADJ_OFFSETS: u32 = 2;
const SEC_ADJ: u32 = 3;
const SEC_DEGREES: u32 = 4;
const SEC_PERM: u32 = 5;
const SEC_INV_PERM: u32 = 6;
const SEC_NAME_OFFSETS: u32 = 7;
const SEC_NAME_BYTES: u32 = 8;
const SEC_NAME_SORT: u32 = 9;
const SEC_TYPES: u32 = 10;
const SEC_LABEL_NAME_OFFSETS: u32 = 11;
const SEC_LABEL_NAME_BYTES: u32 = 12;
const SEC_LABEL_INVERSE: u32 = 13;
const SEC_LABEL_FLAGS: u32 = 14;
const SEC_LABEL_COUNTS: u32 = 15;
const SEC_TYPE_NAME_OFFSETS: u32 = 16;
const SEC_TYPE_NAME_BYTES: u32 = 17;
const SEC_TYPE_PARENT_OFFSETS: u32 = 18;
const SEC_TYPE_PARENTS: u32 = 19;
const SECTION_KINDS: [u32; 19] = [
    SEC_META,
    SEC_ADJ_OFFSETS,
    SEC_ADJ,
    SEC_DEGREES,
    SEC_PERM,
    SEC_INV_PERM,
    SEC_NAME_OFFSETS,
    SEC_NAME_BYTES,
    SEC_NAME_SORT,
    SEC_TYPES,
    SEC_LABEL_NAME_OFFSETS,
    SEC_LABEL_NAME_BYTES,
    SEC_LABEL_INVERSE,
    SEC_LABEL_FLAGS,
    SEC_LABEL_COUNTS,
    SEC_TYPE_NAME_OFFSETS,
    SEC_TYPE_NAME_BYTES,
    SEC_TYPE_PARENT_OFFSETS,
    SEC_TYPE_PARENTS,
];

/// Byte offset where the section table starts.
const TABLE_START: usize = 24;
/// Bytes per section-table entry.
const TABLE_ENTRY: usize = 24;
/// Untyped-node sentinel in the TYPES section.
const NO_TYPE: u32 = u32::MAX;

/// Backing storage of a [`CompactGraph`]: an owned buffer or a read-only
/// file mapping.
pub(crate) enum GraphBytes {
    /// Heap-allocated image (in-memory build, or the read fallback).
    Owned(Vec<u8>),
    /// Memory-mapped file (the zero-copy load path).
    #[cfg(unix)]
    Mapped(crate::io::mmap::Mmap),
}

impl GraphBytes {
    #[inline]
    fn as_slice(&self) -> &[u8] {
        match self {
            GraphBytes::Owned(v) => v,
            #[cfg(unix)]
            GraphBytes::Mapped(m) => m.as_slice(),
        }
    }

    fn is_mapped(&self) -> bool {
        match self {
            GraphBytes::Owned(_) => false,
            #[cfg(unix)]
            GraphBytes::Mapped(_) => true,
        }
    }
}

/// Content-seeded checksum over the section table and payload: 8-byte
/// chunks mixed FNV-style, with the tail and total length folded in.
/// Word-chunked so verifying a 100 MB image costs milliseconds, not a
/// per-byte loop.
pub(crate) fn checksum(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
        h = h.wrapping_mul(PRIME).rotate_left(23);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail) ^ ((rem.len() as u64) << 56);
        h = h.wrapping_mul(PRIME).rotate_left(23);
    }
    h ^ bytes.len() as u64
}

fn format_err(msg: impl Into<String>) -> GraphError {
    GraphError::Format(msg.into())
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Accumulates sections and lays them out with headers, table, alignment
/// padding and the checksum.
struct ImageWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl ImageWriter {
    fn new() -> Self {
        Self {
            sections: Vec::with_capacity(SECTION_KINDS.len()),
        }
    }

    fn section(&mut self, kind: u32, payload: Vec<u8>) {
        self.sections.push((kind, payload));
    }

    fn finish(mut self) -> Vec<u8> {
        self.sections.sort_by_key(|&(kind, _)| kind);
        let count = self.sections.len();
        let table_end = TABLE_START + count * TABLE_ENTRY;
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(count as u32).to_le_bytes());
        out.extend_from_slice(&0u64.to_le_bytes()); // checksum backpatched below
        let mut cursor = table_end;
        for (kind, payload) in &self.sections {
            let aligned = cursor.next_multiple_of(8);
            out.extend_from_slice(&kind.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&(aligned as u64).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            cursor = aligned + payload.len();
        }
        debug_assert_eq!(out.len(), table_end);
        for (_, payload) in &self.sections {
            while out.len() % 8 != 0 {
                out.push(0);
            }
            out.extend_from_slice(payload);
        }
        let sum = checksum(&out[TABLE_START..]);
        out[16..24].copy_from_slice(&sum.to_le_bytes());
        out
    }
}

fn u32s_to_bytes(values: impl IntoIterator<Item = u32>) -> Vec<u8> {
    let mut out = Vec::new();
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Offset that must fit the format's `u32` offset tables.
fn offset_u32(len: usize, what: &str) -> u32 {
    u32::try_from(len).unwrap_or_else(|_| panic!("{what} exceeds the format's u32 offset range"))
}

/// Serializes `graph` into the compact byte image (also the on-disk file
/// content — [`crate::io::save_compact`] writes exactly these bytes).
///
/// The encoding is fully deterministic: the same graph always produces
/// the same bytes, which the golden-file test relies on.
pub fn encode_compact(graph: &KnowledgeGraph) -> Vec<u8> {
    let n = graph.num_nodes();
    let num_labels = graph.labels().len();
    let num_types = graph.taxonomy().len();

    // Degree-ordered relabeling: internal slot order is descending
    // external degree, ties broken by ascending external id so the
    // layout is deterministic.
    let degrees: Vec<u32> = (0..n)
        .map(|v| graph.degree(NodeId::from_index(v)) as u32)
        .collect();
    let mut int_to_ext: Vec<u32> = (0..n as u32).collect();
    int_to_ext.sort_unstable_by_key(|&v| (std::cmp::Reverse(degrees[v as usize]), v));
    let mut ext_to_int = vec![0u32; n];
    for (int, &ext) in int_to_ext.iter().enumerate() {
        ext_to_int[ext as usize] = int as u32;
    }

    // Adjacency: one varint run per internal slot, external ids inside.
    let mut adj = Vec::new();
    let mut adj_offsets = Vec::with_capacity(n + 1);
    let mut run = Vec::new();
    for &ext in &int_to_ext {
        adj_offsets.push(offset_u32(adj.len(), "adjacency stream"));
        run.clear();
        run.extend(
            graph
                .edges(NodeId::new(ext))
                .map(|(l, t)| (l.raw(), t.raw())),
        );
        encode_run(&mut adj, &run);
    }
    adj_offsets.push(offset_u32(adj.len(), "adjacency stream"));

    // Node names: UTF-8 pool in external order + sorted lookup ids.
    let mut name_bytes = Vec::new();
    let mut name_offsets = Vec::with_capacity(n + 1);
    for v in 0..n {
        name_offsets.push(offset_u32(name_bytes.len(), "name pool"));
        name_bytes.extend_from_slice(graph.node_name(NodeId::from_index(v)).as_bytes());
    }
    name_offsets.push(offset_u32(name_bytes.len(), "name pool"));
    let mut name_sort: Vec<u32> = (0..n as u32).collect();
    name_sort.sort_unstable_by(|&a, &b| {
        graph
            .node_name(NodeId::new(a))
            .cmp(graph.node_name(NodeId::new(b)))
            .then(a.cmp(&b))
    });

    let types = (0..n).map(|v| {
        graph
            .node_type(NodeId::from_index(v))
            .map_or(NO_TYPE, NodeTypeId::raw)
    });

    // Edge-label registry.
    let mut label_name_bytes = Vec::new();
    let mut label_name_offsets = Vec::with_capacity(num_labels + 1);
    let mut label_flags = Vec::with_capacity(num_labels);
    let mut label_counts = Vec::new();
    for l in graph.labels().iter() {
        label_name_offsets.push(offset_u32(label_name_bytes.len(), "label name pool"));
        label_name_bytes.extend_from_slice(graph.labels().name(l).as_bytes());
        label_flags.push(u8::from(graph.labels().is_inverse(l)));
        label_counts.extend_from_slice(&graph.label_count(l).to_le_bytes());
    }
    label_name_offsets.push(offset_u32(label_name_bytes.len(), "label name pool"));

    // Taxonomy: names plus flattened parent lists.
    let mut type_name_bytes = Vec::new();
    let mut type_name_offsets = Vec::with_capacity(num_types + 1);
    let mut parent_offsets = Vec::with_capacity(num_types + 1);
    let mut parents = Vec::new();
    for t in 0..num_types {
        let ty = NodeTypeId::from_index(t);
        type_name_offsets.push(offset_u32(type_name_bytes.len(), "type name pool"));
        type_name_bytes.extend_from_slice(graph.taxonomy().name(ty).as_bytes());
        parent_offsets.push(offset_u32(parents.len(), "parent table"));
        parents.extend(graph.taxonomy().parents(ty).iter().map(|p| p.raw()));
    }
    type_name_offsets.push(offset_u32(type_name_bytes.len(), "type name pool"));
    parent_offsets.push(offset_u32(parents.len(), "parent table"));

    let mut meta = Vec::with_capacity(32);
    meta.extend_from_slice(&(n as u32).to_le_bytes());
    meta.extend_from_slice(&(num_labels as u32).to_le_bytes());
    meta.extend_from_slice(&(num_types as u32).to_le_bytes());
    meta.extend_from_slice(&(graph.num_stored_edges() as u64).to_le_bytes());
    meta.extend_from_slice(&(graph.num_logical_edges() as u64).to_le_bytes());

    let mut w = ImageWriter::new();
    w.section(SEC_META, meta);
    w.section(SEC_ADJ_OFFSETS, u32s_to_bytes(adj_offsets));
    w.section(SEC_ADJ, adj);
    w.section(SEC_DEGREES, u32s_to_bytes(degrees));
    w.section(SEC_PERM, u32s_to_bytes(ext_to_int));
    w.section(SEC_INV_PERM, u32s_to_bytes(int_to_ext));
    w.section(SEC_NAME_OFFSETS, u32s_to_bytes(name_offsets));
    w.section(SEC_NAME_BYTES, name_bytes);
    w.section(SEC_NAME_SORT, u32s_to_bytes(name_sort));
    w.section(SEC_TYPES, u32s_to_bytes(types));
    w.section(SEC_LABEL_NAME_OFFSETS, u32s_to_bytes(label_name_offsets));
    w.section(SEC_LABEL_NAME_BYTES, label_name_bytes);
    w.section(
        SEC_LABEL_INVERSE,
        u32s_to_bytes(
            graph
                .labels()
                .iter()
                .map(|l| graph.labels().inverse(l).raw()),
        ),
    );
    w.section(SEC_LABEL_FLAGS, label_flags);
    w.section(SEC_LABEL_COUNTS, label_counts);
    w.section(SEC_TYPE_NAME_OFFSETS, u32s_to_bytes(type_name_offsets));
    w.section(SEC_TYPE_NAME_BYTES, type_name_bytes);
    w.section(SEC_TYPE_PARENT_OFFSETS, u32s_to_bytes(parent_offsets));
    w.section(SEC_TYPE_PARENTS, u32s_to_bytes(parents));
    w.finish()
}

// ---------------------------------------------------------------------------
// The backend
// ---------------------------------------------------------------------------

/// A compact, immutable graph backend decoding straight from one byte
/// image (owned or memory-mapped). See the [module docs](self).
pub struct CompactGraph {
    data: GraphBytes,
    num_nodes: usize,
    num_stored_edges: usize,
    num_logical_edges: usize,
    adj_offsets: Range<usize>,
    adj: Range<usize>,
    degrees: Range<usize>,
    perm: Range<usize>,
    name_offsets: Range<usize>,
    name_bytes: Range<usize>,
    name_sort: Range<usize>,
    types: Range<usize>,
    // Small owned structures rebuilt at load; everything node-sized stays
    // in the byte image.
    labels: EdgeLabelRegistry,
    taxonomy: Taxonomy,
    label_counts: Vec<u64>,
}

/// Reads the `i`-th little-endian `u32` of a byte slice.
#[inline]
fn u32_at(bytes: &[u8], i: usize) -> u32 {
    let p = i * 4;
    u32::from_le_bytes(bytes[p..p + 4].try_into().expect("u32 slice"))
}

/// Splits a `(offsets, pool)` pair of sections into `&str` entries.
fn pooled_str<'a>(
    offsets: &[u8],
    pool: &'a [u8],
    i: usize,
    what: &str,
) -> Result<&'a str, GraphError> {
    let lo = u32_at(offsets, i) as usize;
    let hi = u32_at(offsets, i + 1) as usize;
    let bytes = pool
        .get(lo..hi)
        .ok_or_else(|| format_err(format!("{what} offsets out of bounds")))?;
    std::str::from_utf8(bytes).map_err(|_| format_err(format!("{what} is not valid UTF-8")))
}

impl CompactGraph {
    /// Builds a compact backend from a fully materialized graph by
    /// encoding and re-parsing the byte image — the identical code path a
    /// file load takes, so in-memory and on-disk backends cannot diverge.
    pub fn from_graph(graph: &KnowledgeGraph) -> Self {
        Self::from_bytes(encode_compact(graph)).expect("self-encoded image must parse")
    }

    /// Parses an owned byte image (e.g. the single-read load fallback).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, GraphError> {
        Self::parse(GraphBytes::Owned(bytes))
    }

    /// Whether the backing bytes are a file mapping (zero-copy load) as
    /// opposed to an owned heap buffer.
    pub fn is_memory_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Number of logical (user-inserted) edges recorded in the image.
    pub fn num_logical_edges(&self) -> usize {
        self.num_logical_edges
    }

    /// Size of the backing byte image in bytes.
    pub fn image_bytes(&self) -> usize {
        self.data.as_slice().len()
    }

    pub(crate) fn parse(data: GraphBytes) -> Result<Self, GraphError> {
        // Parse against the borrowed slice first, then move the storage
        // into the finished value (the parsed views are plain ranges, so
        // nothing borrows `data` across the move).
        let p = parse_image(data.as_slice())?;
        Ok(Self {
            data,
            num_nodes: p.num_nodes,
            num_stored_edges: p.num_stored_edges,
            num_logical_edges: p.num_logical_edges,
            adj_offsets: p.adj_offsets,
            adj: p.adj,
            degrees: p.degrees,
            perm: p.perm,
            name_offsets: p.name_offsets,
            name_bytes: p.name_bytes,
            name_sort: p.name_sort,
            types: p.types,
            labels: p.labels,
            taxonomy: p.taxonomy,
            label_counts: p.label_counts,
        })
    }

    #[inline]
    fn bytes(&self) -> &[u8] {
        self.data.as_slice()
    }

    /// The varint run of `node`'s out-edges (located via the degree
    /// permutation).
    #[inline]
    fn run_bytes(&self, node: NodeId) -> &[u8] {
        let int = u32_at(&self.bytes()[self.perm.clone()], node.index()) as usize;
        let offs = &self.bytes()[self.adj_offsets.clone()];
        let lo = u32_at(offs, int) as usize;
        let hi = u32_at(offs, int + 1) as usize;
        &self.bytes()[self.adj.clone()][lo..hi]
    }
}

/// Everything [`CompactGraph`] holds besides the storage itself; produced
/// by [`parse_image`].
struct ParsedImage {
    num_nodes: usize,
    num_stored_edges: usize,
    num_logical_edges: usize,
    adj_offsets: Range<usize>,
    adj: Range<usize>,
    degrees: Range<usize>,
    perm: Range<usize>,
    name_offsets: Range<usize>,
    name_bytes: Range<usize>,
    name_sort: Range<usize>,
    types: Range<usize>,
    labels: EdgeLabelRegistry,
    taxonomy: Taxonomy,
    label_counts: Vec<u64>,
}

/// Validates and indexes one byte image; every malformed input is a
/// [`GraphError::Format`], never a panic or a mis-decode.
fn parse_image(bytes: &[u8]) -> Result<ParsedImage, GraphError> {
    if bytes.len() < TABLE_START {
        return Err(format_err(format!(
            "truncated file: {} bytes is smaller than the {TABLE_START}-byte header",
            bytes.len()
        )));
    }
    if bytes[..8] != MAGIC {
        return Err(format_err(format!(
            "bad magic {:?} (expected {:?} — not a compact graph file)",
            &bytes[..8],
            &MAGIC[..]
        )));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("header"));
    if version != FORMAT_VERSION {
        return Err(format_err(format!(
            "unsupported format version {version} (this build reads version {FORMAT_VERSION})"
        )));
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("header")) as usize;
    if count != SECTION_KINDS.len() {
        return Err(format_err(format!(
            "expected {} sections, file declares {count}",
            SECTION_KINDS.len()
        )));
    }
    let stored_sum = u64::from_le_bytes(bytes[16..24].try_into().expect("header"));
    let table_end = TABLE_START + count * TABLE_ENTRY;
    if bytes.len() < table_end {
        return Err(format_err("truncated file: section table cut short"));
    }
    let actual_sum = checksum(&bytes[TABLE_START..]);
    if stored_sum != actual_sum {
        return Err(format_err(format!(
            "checksum mismatch: header says {stored_sum:#018x}, content hashes to \
                 {actual_sum:#018x} (file corrupt or truncated)"
        )));
    }

    let mut ranges: [Option<Range<usize>>; SECTION_KINDS.len()] = Default::default();
    for i in 0..count {
        let entry = &bytes[TABLE_START + i * TABLE_ENTRY..TABLE_START + (i + 1) * TABLE_ENTRY];
        let kind = u32::from_le_bytes(entry[0..4].try_into().expect("entry"));
        let offset = u64::from_le_bytes(entry[8..16].try_into().expect("entry")) as usize;
        let len = u64::from_le_bytes(entry[16..24].try_into().expect("entry")) as usize;
        let slot = SECTION_KINDS
            .iter()
            .position(|&k| k == kind)
            .ok_or_else(|| format_err(format!("unknown section kind {kind}")))?;
        if ranges[slot].is_some() {
            return Err(format_err(format!("duplicate section kind {kind}")));
        }
        if !offset.is_multiple_of(8)
            || offset < table_end
            || offset.saturating_add(len) > bytes.len()
        {
            return Err(format_err(format!(
                "section {kind} range {offset}..{} is misaligned or out of bounds",
                offset + len
            )));
        }
        ranges[slot] = Some(offset..offset + len);
    }
    let sec = |kind: u32| -> Range<usize> {
        let slot = SECTION_KINDS.iter().position(|&k| k == kind).expect("kind");
        ranges[slot].clone().expect("all sections verified present")
    };

    // META
    let meta = &bytes[sec(SEC_META)];
    if meta.len() != 28 {
        return Err(format_err("META section has wrong size"));
    }
    let num_nodes = u32::from_le_bytes(meta[0..4].try_into().expect("meta")) as usize;
    let num_labels = u32::from_le_bytes(meta[4..8].try_into().expect("meta")) as usize;
    let num_types = u32::from_le_bytes(meta[8..12].try_into().expect("meta")) as usize;
    let num_stored_edges = u64::from_le_bytes(meta[12..20].try_into().expect("meta")) as usize;
    let num_logical_edges = u64::from_le_bytes(meta[20..28].try_into().expect("meta")) as usize;

    let expect_len = |kind: u32, want: usize, what: &str| -> Result<Range<usize>, GraphError> {
        let r = sec(kind);
        if r.len() != want {
            return Err(format_err(format!(
                "{what} section is {} bytes, expected {want}",
                r.len()
            )));
        }
        Ok(r)
    };

    let adj_offsets = expect_len(SEC_ADJ_OFFSETS, (num_nodes + 1) * 4, "adjacency offsets")?;
    let adj = sec(SEC_ADJ);
    let degrees = expect_len(SEC_DEGREES, num_nodes * 4, "degrees")?;
    let perm = expect_len(SEC_PERM, num_nodes * 4, "permutation")?;
    let inv_perm = expect_len(SEC_INV_PERM, num_nodes * 4, "inverse permutation")?;
    let name_offsets = expect_len(SEC_NAME_OFFSETS, (num_nodes + 1) * 4, "name offsets")?;
    let name_bytes = sec(SEC_NAME_BYTES);
    let name_sort = expect_len(SEC_NAME_SORT, num_nodes * 4, "name sort")?;
    let types = expect_len(SEC_TYPES, num_nodes * 4, "types")?;

    // Offset tables must be monotone and span their pools exactly.
    let check_offsets =
        |r: &Range<usize>, n: usize, pool_len: usize, what: &str| -> Result<(), GraphError> {
            let table = &bytes[r.clone()];
            let mut prev = 0u32;
            for i in 0..=n {
                let o = u32_at(table, i);
                if o < prev {
                    return Err(format_err(format!("{what} offsets are not monotone")));
                }
                prev = o;
            }
            if u32_at(table, 0) != 0 || prev as usize != pool_len {
                return Err(format_err(format!("{what} offsets do not span the pool")));
            }
            Ok(())
        };
    check_offsets(&adj_offsets, num_nodes, adj.len(), "adjacency")?;
    check_offsets(&name_offsets, num_nodes, name_bytes.len(), "name")?;

    // Validate permutation consistency and id ranges in one pass.
    {
        let p = &bytes[perm.clone()];
        let ip = &bytes[inv_perm.clone()];
        for v in 0..num_nodes {
            let int = u32_at(p, v) as usize;
            if int >= num_nodes || u32_at(ip, int) as usize != v {
                return Err(format_err("node permutation tables are inconsistent"));
            }
            let ty = u32_at(&bytes[types.clone()], v);
            if ty != NO_TYPE && ty as usize >= num_types {
                return Err(format_err(format!("node {v} has out-of-range type {ty}")));
            }
            let by_name = u32_at(&bytes[name_sort.clone()], v);
            if by_name as usize >= num_nodes {
                return Err(format_err("name-sort table references unknown node"));
            }
        }
    }
    // Validate every name slice is well-formed UTF-8 once, up front;
    // accessors can then decode without per-call error paths.
    for v in 0..num_nodes {
        pooled_str(
            &bytes[name_offsets.clone()],
            &bytes[name_bytes.clone()],
            v,
            "node name",
        )?;
    }

    // Rebuild the label registry through its public API so every
    // invariant (consecutive forward/inverse ids, symmetric labels)
    // is re-established — a file that violates the layout errors out.
    let label_name_offsets = expect_len(
        SEC_LABEL_NAME_OFFSETS,
        (num_labels + 1) * 4,
        "label name offsets",
    )?;
    let label_name_bytes = sec(SEC_LABEL_NAME_BYTES);
    let label_inverse = expect_len(SEC_LABEL_INVERSE, num_labels * 4, "label inverses")?;
    let label_flags = expect_len(SEC_LABEL_FLAGS, num_labels, "label flags")?;
    let label_counts_sec = expect_len(SEC_LABEL_COUNTS, num_labels * 8, "label counts")?;
    check_offsets(
        &label_name_offsets,
        num_labels,
        label_name_bytes.len(),
        "label name",
    )?;
    let mut labels = EdgeLabelRegistry::new();
    {
        let offs = &bytes[label_name_offsets.clone()];
        let pool = &bytes[label_name_bytes.clone()];
        let inv = &bytes[label_inverse.clone()];
        let flags = &bytes[label_flags.clone()];
        let mut i = 0usize;
        while i < num_labels {
            if flags[i] != 0 {
                return Err(format_err(
                    "label table corrupt: inverse direction before its forward label",
                ));
            }
            let name = pooled_str(offs, pool, i, "label name")?;
            let inverse_of_i = u32_at(inv, i) as usize;
            let id = if inverse_of_i == i {
                labels.register_with_inverse(name, name)
            } else {
                if inverse_of_i != i + 1 || i + 1 >= num_labels || flags[i + 1] != 1 {
                    return Err(format_err(
                        "label table corrupt: forward/inverse ids are not consecutive",
                    ));
                }
                let inverse_name = pooled_str(offs, pool, i + 1, "label name")?;
                labels.register_with_inverse(name, inverse_name)
            };
            if id.index() != i {
                return Err(format_err("label table corrupt: duplicate label name"));
            }
            i = if inverse_of_i == i { i + 1 } else { i + 2 };
        }
    }
    let label_counts: Vec<u64> = (0..num_labels)
        .map(|i| {
            let p = label_counts_sec.start + i * 8;
            u64::from_le_bytes(bytes[p..p + 8].try_into().expect("u64 slice"))
        })
        .collect();
    if label_counts.iter().sum::<u64>() != num_stored_edges as u64 {
        return Err(format_err(
            "label counts do not sum to the stored edge count",
        ));
    }

    // Rebuild the taxonomy.
    let type_name_offsets = expect_len(
        SEC_TYPE_NAME_OFFSETS,
        (num_types + 1) * 4,
        "type name offsets",
    )?;
    let type_name_bytes = sec(SEC_TYPE_NAME_BYTES);
    let parent_offsets = expect_len(
        SEC_TYPE_PARENT_OFFSETS,
        (num_types + 1) * 4,
        "parent offsets",
    )?;
    let parent_sec = sec(SEC_TYPE_PARENTS);
    check_offsets(
        &type_name_offsets,
        num_types,
        type_name_bytes.len(),
        "type name",
    )?;
    let mut taxonomy = Taxonomy::new();
    for t in 0..num_types {
        let name = pooled_str(
            &bytes[type_name_offsets.clone()],
            &bytes[type_name_bytes.clone()],
            t,
            "type name",
        )?;
        let id = taxonomy.register(name);
        if id.index() != t {
            return Err(format_err("type table corrupt: duplicate type name"));
        }
    }
    {
        let offs = &bytes[parent_offsets.clone()];
        let table = &bytes[parent_sec.clone()];
        if u32_at(offs, num_types) as usize * 4 != parent_sec.len() {
            return Err(format_err("parent offsets do not span the parent table"));
        }
        for t in 0..num_types {
            let lo = u32_at(offs, t) as usize;
            let hi = u32_at(offs, t + 1) as usize;
            if hi < lo || hi * 4 > parent_sec.len() {
                return Err(format_err("parent offsets are not monotone"));
            }
            for i in lo..hi {
                let p = u32_at(table, i) as usize;
                if p >= num_types {
                    return Err(format_err("taxonomy references an unknown parent type"));
                }
                taxonomy.add_subtype(NodeTypeId::from_index(t), NodeTypeId::from_index(p));
            }
        }
    }

    Ok(ParsedImage {
        num_nodes,
        num_stored_edges,
        num_logical_edges,
        adj_offsets,
        adj,
        degrees,
        perm,
        name_offsets,
        name_bytes,
        name_sort,
        types,
        labels,
        taxonomy,
        label_counts,
    })
}

impl fmt::Debug for CompactGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompactGraph")
            .field("num_nodes", &self.num_nodes)
            .field("num_stored_edges", &self.num_stored_edges)
            .field("image_bytes", &self.image_bytes())
            .field("memory_mapped", &self.is_memory_mapped())
            .finish_non_exhaustive()
    }
}

/// Edge iterator over a delta-encoded run; yields the same `(label,
/// target)` sequence as [`crate::csr::Csr::edges`] on the source graph.
pub struct CompactEdges<'a>(RunDecoder<'a>);

impl Iterator for CompactEdges<'_> {
    type Item = (EdgeLabelId, NodeId);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        self.0
            .next()
            .map(|(l, t)| (EdgeLabelId::new(l), NodeId::new(t)))
    }
}

/// Distinct-label iterator decoding group headers only.
pub struct CompactLabels<'a>(RunDecoder<'a>);

impl Iterator for CompactLabels<'_> {
    type Item = EdgeLabelId;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        self.0.next_distinct_label().map(EdgeLabelId::new)
    }
}

impl GraphAccess for CompactGraph {
    type Edges<'a> = CompactEdges<'a>;
    type Labels<'a> = CompactLabels<'a>;

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_stored_edges(&self) -> usize {
        self.num_stored_edges
    }

    fn node_name(&self, node: NodeId) -> &str {
        pooled_str(
            &self.bytes()[self.name_offsets.clone()],
            &self.bytes()[self.name_bytes.clone()],
            node.index(),
            "node name",
        )
        .expect("name pool validated at load")
    }

    fn node_by_name(&self, name: &str) -> Option<NodeId> {
        let sort = &self.bytes()[self.name_sort.clone()];
        let mut lo = 0usize;
        let mut hi = self.num_nodes;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let candidate = NodeId::new(u32_at(sort, mid));
            match self.node_name(candidate).cmp(name) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(candidate),
            }
        }
        None
    }

    fn node_type(&self, node: NodeId) -> Option<NodeTypeId> {
        let raw = u32_at(&self.bytes()[self.types.clone()], node.index());
        (raw != NO_TYPE).then(|| NodeTypeId::new(raw))
    }

    fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    fn degree(&self, node: NodeId) -> usize {
        u32_at(&self.bytes()[self.degrees.clone()], node.index()) as usize
    }

    fn edges(&self, node: NodeId) -> CompactEdges<'_> {
        CompactEdges(RunDecoder::new(self.run_bytes(node)))
    }

    fn edge_at(&self, node: NodeId, i: usize) -> (EdgeLabelId, NodeId) {
        // Varint runs have no random access; decode forward. Runs are
        // short (a node's degree), so this stays cheap — but it is O(deg),
        // not the CSR's O(1).
        self.edges(node)
            .nth(i)
            .expect("edge index out of range for node")
    }

    fn neighbors_with_label(&self, node: NodeId, label: EdgeLabelId) -> Cow<'_, [NodeId]> {
        let mut out = Vec::new();
        for (l, t) in self.edges(node) {
            if l == label {
                out.push(t);
            } else if l > label {
                break; // runs are label-sorted
            }
        }
        Cow::Owned(out)
    }

    fn labels_of(&self, node: NodeId) -> CompactLabels<'_> {
        CompactLabels(RunDecoder::new(self.run_bytes(node)))
    }

    fn labels(&self) -> &EdgeLabelRegistry {
        &self.labels
    }

    fn label_count(&self, label: EdgeLabelId) -> u64 {
        self.label_counts[label.index()]
    }

    fn approx_bytes(&self) -> usize {
        self.image_bytes()
            + self.labels.approx_bytes()
            + self.taxonomy.approx_bytes()
            + self.label_counts.capacity() * 8
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        for (person, domain) in [
            ("Merkel", "Physics"),
            ("Putin", "Law"),
            ("Renzi", "Law"),
            ("Hollande", "Law"),
        ] {
            b.add_triple(person, "studied", domain);
        }
        for (parent, child) in [
            ("Obama", "Malia"),
            ("Putin", "Mariya"),
            ("Renzi", "Ester"),
            ("Hollande", "Thomas"),
            ("Hollande", "Flora"),
        ] {
            b.add_triple(parent, "hasChild", child);
        }
        let sym = b.edge_label_with_inverse("marriedTo", "marriedTo");
        let x = b.node("Hollande");
        let y = b.node("Merkel");
        b.add_edge(x, sym, y);
        for p in ["Merkel", "Obama", "Putin", "Renzi", "Hollande"] {
            let node = b.node(p);
            b.set_type(node, "politician");
        }
        b.subtype("politician", "person");
        b.build()
    }

    fn assert_matches(g: &KnowledgeGraph, c: &CompactGraph) {
        assert_eq!(g.num_nodes(), GraphAccess::num_nodes(c));
        assert_eq!(g.num_stored_edges(), GraphAccess::num_stored_edges(c));
        assert_eq!(g.num_logical_edges(), c.num_logical_edges());
        for v in GraphAccess::nodes(g) {
            assert_eq!(g.node_name(v), c.node_name(v));
            assert_eq!(g.node_type(v), c.node_type(v));
            assert_eq!(g.degree(v), GraphAccess::degree(c, v));
            let want: Vec<_> = g.edges(v).collect();
            let got: Vec<_> = GraphAccess::edges(c, v).collect();
            assert_eq!(want, got, "edge run of {}", g.node_name(v));
            let want_l: Vec<_> = g.labels_of(v).collect();
            let got_l: Vec<_> = GraphAccess::labels_of(c, v).collect();
            assert_eq!(want_l, got_l);
            for i in 0..g.degree(v) {
                assert_eq!(g.edge_at(v, i), GraphAccess::edge_at(c, v, i));
            }
            assert_eq!(c.node_by_name(g.node_name(v)), Some(v));
            for l in g.labels().iter() {
                assert_eq!(
                    g.neighbors_with_label(v, l),
                    GraphAccess::neighbors_with_label(c, v, l).as_ref()
                );
            }
        }
        for l in g.labels().iter() {
            assert_eq!(g.label_name(l), GraphAccess::label_name(c, l));
            assert_eq!(g.labels().inverse(l), GraphAccess::labels(c).inverse(l));
            assert_eq!(
                g.labels().is_inverse(l),
                GraphAccess::labels(c).is_inverse(l)
            );
            assert_eq!(g.label_count(l), GraphAccess::label_count(c, l));
        }
        assert_eq!(g.taxonomy().len(), c.taxonomy.len());
        for t in 0..g.taxonomy().len() {
            let ty = NodeTypeId::from_index(t);
            assert_eq!(g.taxonomy().name(ty), c.taxonomy.name(ty));
            assert_eq!(g.taxonomy().parents(ty), c.taxonomy.parents(ty));
        }
    }

    #[test]
    fn compact_graph_matches_csr_exactly() {
        let g = sample();
        let c = CompactGraph::from_graph(&g);
        assert_matches(&g, &c);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = GraphBuilder::new().build();
        let c = CompactGraph::from_graph(&g);
        assert_eq!(GraphAccess::num_nodes(&c), 0);
        assert_eq!(GraphAccess::num_stored_edges(&c), 0);
        assert_eq!(c.node_by_name("anything"), None);
    }

    #[test]
    fn encoding_is_byte_stable() {
        let a = encode_compact(&sample());
        let b = encode_compact(&sample());
        assert_eq!(a, b, "same graph must serialize to identical bytes");
    }

    #[test]
    fn compact_is_smaller_than_csr() {
        // The fixed header/section overhead (~1 KiB) swamps a toy graph,
        // so size the comparison to a few thousand nodes — still fast,
        // but representative of the regime the compact format targets.
        let mut b = GraphBuilder::new();
        let labels: Vec<_> = (0..4).map(|l| b.edge_label(&format!("rel{l}"))).collect();
        let nodes: Vec<_> = (0..2_000).map(|v| b.node(&format!("e{v}"))).collect();
        for v in 0..2_000usize {
            for k in 1..=5usize {
                let t = (v * 31 + k * 7) % 2_000;
                if t != v {
                    b.add_edge(nodes[v], labels[(v + k) % 4], nodes[t]);
                }
            }
        }
        let g = b.build();
        let c = CompactGraph::from_graph(&g);
        assert!(
            c.approx_bytes() < g.approx_bytes() / 2,
            "compact {} not under half of csr {}",
            c.approx_bytes(),
            g.approx_bytes()
        );
    }

    #[test]
    fn unknown_node_lookup_is_none() {
        let c = CompactGraph::from_graph(&sample());
        assert_eq!(c.node_by_name("Nixon"), None);
        assert_eq!(c.node_by_name(""), None);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_compact(&sample());
        bytes[0] = b'X';
        let err = CompactGraph::from_bytes(bytes).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = encode_compact(&sample());
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let err = CompactGraph::from_bytes(bytes).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode_compact(&sample());
        for keep in [0, 10, TABLE_START, bytes.len() / 2, bytes.len() - 1] {
            let err = CompactGraph::from_bytes(bytes[..keep].to_vec()).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("truncated") || msg.contains("checksum") || msg.contains("bounds"),
                "keep={keep}: {msg}"
            );
        }
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let mut bytes = encode_compact(&sample());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = CompactGraph::from_bytes(bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn hubs_are_relabeled_first() {
        let g = sample();
        let bytes = encode_compact(&g);
        let c = CompactGraph::from_bytes(bytes).unwrap();
        // The internal slot of the highest-degree node is 0.
        let hub = GraphAccess::nodes(&g)
            .max_by_key(|&v| (g.degree(v), std::cmp::Reverse(v.raw())))
            .unwrap();
        let perm = &c.bytes()[c.perm.clone()];
        assert_eq!(u32_at(perm, hub.index()), 0);
    }
}
