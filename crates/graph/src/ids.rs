//! Compact typed identifiers.
//!
//! Nodes, node types and edge labels are dictionary-encoded into `u32`
//! indexes. Newtypes keep the three id spaces from being mixed up at
//! compile time while staying 4 bytes each (the CSR stores tens of
//! millions of them).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(u32);

        impl $name {
            /// Wraps a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw `u32` index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// The index as `usize`, for slice addressing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX` — the substrate is
            /// dimensioned for graphs of at most 2³² entities.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id space exhausted (more than 2^32 entries)"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a node (entity or attribute value) in the graph.
    NodeId,
    "n"
);
define_id!(
    /// Identifier of an edge label (relationship type), e.g. `hasChild`.
    EdgeLabelId,
    "l"
);
define_id!(
    /// Identifier of a node type in the taxonomy, e.g. `politician`.
    NodeTypeId,
    "t"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trip_raw_and_index() {
        let id = NodeId::new(7);
        assert_eq!(id.raw(), 7);
        assert_eq!(id.index(), 7);
        assert_eq!(NodeId::from_index(7), id);
        assert_eq!(usize::from(id), 7);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(EdgeLabelId::new(3).to_string(), "l3");
        assert_eq!(NodeTypeId::new(3).to_string(), "t3");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    #[should_panic(expected = "id space exhausted")]
    fn from_index_overflow_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn ids_are_four_bytes() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeLabelId>(), 4);
        assert_eq!(std::mem::size_of::<Option<NodeId>>(), 8);
    }
}
