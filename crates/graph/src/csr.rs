//! Compressed sparse row adjacency with label-sorted runs.
//!
//! Each node's out-edges are stored contiguously, sorted by `(label,
//! target)`. That ordering gives the two access paths the algorithms need:
//!
//! - *PathMining* (random walks) draws a uniform out-edge — O(1) indexing
//!   into the node's run;
//! - *metapath matching* expands only edges with a required label —
//!   binary search for the label's sub-run, no per-edge filtering.

use crate::ids::{EdgeLabelId, NodeId};

/// Immutable CSR adjacency. Built once by [`crate::builder::GraphBuilder`].
#[derive(Debug, Clone, Default)]
pub struct Csr {
    /// `offsets[v] .. offsets[v + 1]` is node v's run; length `n + 1`.
    offsets: Vec<u32>,
    /// Edge labels, parallel to `targets`.
    labels: Vec<EdgeLabelId>,
    /// Edge targets, parallel to `labels`.
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds a CSR from an edge list; `edges` is consumed, sorted by
    /// `(source, label, target)`.
    pub fn from_edges(num_nodes: usize, mut edges: Vec<(NodeId, EdgeLabelId, NodeId)>) -> Self {
        edges.sort_unstable_by_key(|&(s, l, t)| (s, l, t));
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut labels = Vec::with_capacity(edges.len());
        let mut targets = Vec::with_capacity(edges.len());
        let mut cursor = 0usize;
        for v in 0..num_nodes {
            offsets.push(u32::try_from(labels.len()).expect("edge count exceeds u32"));
            while cursor < edges.len() && edges[cursor].0.index() == v {
                labels.push(edges[cursor].1);
                targets.push(edges[cursor].2);
                cursor += 1;
            }
        }
        debug_assert_eq!(cursor, edges.len(), "edge with out-of-range source node");
        offsets.push(u32::try_from(labels.len()).expect("edge count exceeds u32"));
        Self {
            offsets,
            labels,
            targets,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The half-open range of edge indexes belonging to `v`.
    #[inline]
    fn range(&self, v: NodeId) -> std::ops::Range<usize> {
        let i = v.index();
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// Iterates over `(label, target)` pairs of `v`'s out-edges.
    pub fn edges(&self, v: NodeId) -> EdgeIter<'_> {
        let r = self.range(v);
        self.labels[r.clone()]
            .iter()
            .copied()
            .zip(self.targets[r].iter().copied())
    }

    /// The `i`-th out-edge of `v` (for O(1) uniform sampling).
    #[inline]
    pub fn edge_at(&self, v: NodeId, i: usize) -> (EdgeLabelId, NodeId) {
        let base = self.offsets[v.index()] as usize;
        (self.labels[base + i], self.targets[base + i])
    }

    /// Targets of `v`'s out-edges labeled `l`, as a contiguous slice.
    pub fn neighbors_with_label(&self, v: NodeId, l: EdgeLabelId) -> &[NodeId] {
        let r = self.range(v);
        let run = &self.labels[r.clone()];
        // Label-sorted run: binary search for the sub-run of `l`.
        let lo = run.partition_point(|&x| x < l);
        let hi = run.partition_point(|&x| x <= l);
        &self.targets[r.start + lo..r.start + hi]
    }

    /// Number of `v`'s out-edges labeled `l` — the cardinality that feeds
    /// the Card distribution of §3.2.
    #[inline]
    pub fn degree_with_label(&self, v: NodeId, l: EdgeLabelId) -> usize {
        self.neighbors_with_label(v, l).len()
    }

    /// Approximate resident heap bytes of the three CSR arrays.
    pub fn approx_bytes(&self) -> usize {
        (self.offsets.capacity() + self.labels.capacity() + self.targets.capacity()) * 4
    }

    /// Iterates over the distinct labels on `v`'s out-edges.
    pub fn labels_of(&self, v: NodeId) -> DistinctLabels<'_> {
        let r = self.range(v);
        let run = &self.labels[r];
        DistinctLabels { run, pos: 0 }
    }
}

/// Concrete iterator type behind [`Csr::edges`] (named so backend-generic
/// code can use it as a GAT instantiation).
pub type EdgeIter<'a> = std::iter::Zip<
    std::iter::Copied<std::slice::Iter<'a, EdgeLabelId>>,
    std::iter::Copied<std::slice::Iter<'a, NodeId>>,
>;

/// Iterator over the first element of each equal-label run (the distinct
/// labels of a node, ascending); see [`Csr::labels_of`].
pub struct DistinctLabels<'a> {
    run: &'a [EdgeLabelId],
    pos: usize,
}

impl Iterator for DistinctLabels<'_> {
    type Item = EdgeLabelId;

    fn next(&mut self) -> Option<EdgeLabelId> {
        if self.pos >= self.run.len() {
            return None;
        }
        let label = self.run[self.pos];
        // Skip to the end of this label's sub-run.
        let rest = &self.run[self.pos..];
        self.pos += rest.partition_point(|&x| x <= label);
        Some(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: u32) -> EdgeLabelId {
        EdgeLabelId::new(i)
    }

    fn sample() -> Csr {
        // 0 -l0-> 1, 0 -l0-> 2, 0 -l1-> 1, 2 -l0-> 0; node 1 is a sink.
        Csr::from_edges(
            3,
            vec![
                (n(0), l(1), n(1)),
                (n(0), l(0), n(2)),
                (n(2), l(0), n(0)),
                (n(0), l(0), n(1)),
            ],
        )
    }

    #[test]
    fn counts_and_degrees() {
        let g = sample();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(n(0)), 3);
        assert_eq!(g.degree(n(1)), 0);
        assert_eq!(g.degree(n(2)), 1);
    }

    #[test]
    fn edges_sorted_by_label_then_target() {
        let g = sample();
        let e: Vec<_> = g.edges(n(0)).collect();
        assert_eq!(e, vec![(l(0), n(1)), (l(0), n(2)), (l(1), n(1))]);
    }

    #[test]
    fn neighbors_with_label_is_exact_subrun() {
        let g = sample();
        assert_eq!(g.neighbors_with_label(n(0), l(0)), &[n(1), n(2)]);
        assert_eq!(g.neighbors_with_label(n(0), l(1)), &[n(1)]);
        assert!(g.neighbors_with_label(n(0), l(2)).is_empty());
        assert!(g.neighbors_with_label(n(1), l(0)).is_empty());
        assert_eq!(g.degree_with_label(n(0), l(0)), 2);
    }

    #[test]
    fn edge_at_indexes_into_run() {
        let g = sample();
        assert_eq!(g.edge_at(n(0), 0), (l(0), n(1)));
        assert_eq!(g.edge_at(n(0), 2), (l(1), n(1)));
    }

    #[test]
    fn labels_of_deduplicates() {
        let g = sample();
        let labels: Vec<_> = g.labels_of(n(0)).collect();
        assert_eq!(labels, vec![l(0), l(1)]);
        assert_eq!(g.labels_of(n(1)).count(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, vec![]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn isolated_trailing_nodes_have_empty_runs() {
        let g = Csr::from_edges(5, vec![(n(1), l(0), n(0))]);
        assert_eq!(g.degree(n(4)), 0);
        assert_eq!(g.degree(n(1)), 1);
    }
}
