//! The immutable [`KnowledgeGraph`] query API.
//!
//! This is `G = ⟨V, E, φ, ψ⟩` of Def. 1, frozen for concurrent read access:
//! node names are φ, edge labels are ψ, and the CSR stores both directions
//! of every logical edge (the `l` / `l⁻¹` convention). All algorithmic
//! crates (`nck-core`) take `&KnowledgeGraph` and can traverse from
//! multiple threads without locks.

use crate::csr::Csr;
use crate::error::GraphError;
use crate::ids::{EdgeLabelId, NodeId, NodeTypeId};
use crate::interner::Interner;
use crate::schema::EdgeLabelRegistry;
use crate::taxonomy::Taxonomy;

/// An immutable, dictionary-encoded labeled multigraph.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    names: Interner,
    types: Vec<Option<NodeTypeId>>,
    labels: EdgeLabelRegistry,
    taxonomy: Taxonomy,
    csr: Csr,
    label_counts: Vec<u64>,
    num_logical_edges: usize,
}

impl KnowledgeGraph {
    /// Assembles a graph from parts; used by [`crate::builder::GraphBuilder`].
    pub(crate) fn from_parts(
        names: Interner,
        types: Vec<Option<NodeTypeId>>,
        labels: EdgeLabelRegistry,
        taxonomy: Taxonomy,
        csr: Csr,
        label_counts: Vec<u64>,
        num_logical_edges: usize,
    ) -> Self {
        debug_assert_eq!(csr.num_nodes(), types.len());
        debug_assert_eq!(label_counts.len(), labels.len());
        Self {
            names,
            types,
            labels,
            taxonomy,
            csr,
            label_counts,
            num_logical_edges,
        }
    }

    // ---- size ----

    /// Number of nodes `|V|`.
    pub fn num_nodes(&self) -> usize {
        self.csr.num_nodes()
    }

    /// Number of logical (user-inserted) edges.
    pub fn num_logical_edges(&self) -> usize {
        self.num_logical_edges
    }

    /// Number of stored directed edges `|E|` (logical + inverse mirrors).
    /// This is the denominator of Eq. 1's label frequency.
    pub fn num_stored_edges(&self) -> usize {
        self.csr.num_edges()
    }

    // ---- nodes ----

    /// The name (φ label) of `node`.
    pub fn node_name(&self, node: NodeId) -> &str {
        self.names.resolve(node.raw())
    }

    /// Looks a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).map(NodeId::new)
    }

    /// Looks a node up by name, or errors with the offending name.
    pub fn require_node(&self, name: &str) -> Result<NodeId, GraphError> {
        self.node_by_name(name)
            .ok_or_else(|| GraphError::UnknownNode(name.to_owned()))
    }

    /// The node's type, when one was assigned.
    pub fn node_type(&self, node: NodeId) -> Option<NodeTypeId> {
        self.types[node.index()]
    }

    /// Whether `node`'s type is (transitively) a subtype of `ty`.
    pub fn node_has_type(&self, node: NodeId, ty: NodeTypeId) -> bool {
        match self.node_type(node) {
            Some(t) => self.taxonomy.is_subtype(t, ty),
            None => false,
        }
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32).map(NodeId::new)
    }

    // ---- edges ----

    /// Out-degree of `node` over stored edges (both directions of Def. 1).
    pub fn degree(&self, node: NodeId) -> usize {
        self.csr.degree(node)
    }

    /// Iterates `(label, target)` over `node`'s stored out-edges.
    pub fn edges(&self, node: NodeId) -> crate::csr::EdgeIter<'_> {
        self.csr.edges(node)
    }

    /// The `i`-th stored out-edge of `node` (uniform-sampling access path).
    pub fn edge_at(&self, node: NodeId, i: usize) -> (EdgeLabelId, NodeId) {
        self.csr.edge_at(node, i)
    }

    /// Targets of `node`'s out-edges labeled `label`.
    pub fn neighbors_with_label(&self, node: NodeId, label: EdgeLabelId) -> &[NodeId] {
        self.csr.neighbors_with_label(node, label)
    }

    /// Number of `node`'s out-edges labeled `label` (Card distribution input).
    pub fn degree_with_label(&self, node: NodeId, label: EdgeLabelId) -> usize {
        self.csr.degree_with_label(node, label)
    }

    /// Distinct labels on `node`'s out-edges — `L|{node}` of Def. 3.
    pub fn labels_of(&self, node: NodeId) -> crate::csr::DistinctLabels<'_> {
        self.csr.labels_of(node)
    }

    // ---- labels ----

    /// The edge-label registry.
    pub fn labels(&self) -> &EdgeLabelRegistry {
        &self.labels
    }

    /// The name of an edge label.
    pub fn label_name(&self, label: EdgeLabelId) -> &str {
        self.labels.name(label)
    }

    /// Number of stored edges carrying `label` — `|E_l|` of Eq. 1.
    pub fn label_count(&self, label: EdgeLabelId) -> u64 {
        self.label_counts[label.index()]
    }

    /// Relative frequency `|E_l| / |E|` of `label` over stored edges.
    ///
    /// Eq. 1 weights a transition by `1 − frequency`, favoring rare
    /// (informative) labels.
    pub fn label_frequency(&self, label: EdgeLabelId) -> f64 {
        let e = self.num_stored_edges();
        if e == 0 {
            0.0
        } else {
            self.label_count(label) as f64 / e as f64
        }
    }

    /// Approximate resident heap bytes of the whole graph: interner
    /// (strings stored twice), CSR arrays, type column, label registry,
    /// taxonomy and per-label counts. The compact backend's ≤50% memory
    /// target in `BENCH_scale.json` is measured against this number.
    pub fn approx_bytes(&self) -> usize {
        self.names.approx_bytes()
            + self.csr.approx_bytes()
            + self.types.capacity() * std::mem::size_of::<Option<NodeTypeId>>()
            + self.labels.approx_bytes()
            + self.taxonomy.approx_bytes()
            + self.label_counts.capacity() * 8
    }

    // ---- taxonomy ----

    /// The node-type taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// All nodes whose type is a (transitive) subtype of `ty`.
    ///
    /// Linear scan; intended for evaluation tooling, not hot paths.
    pub fn nodes_with_type(&self, ty: NodeTypeId) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| self.node_has_type(n, ty))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// The Figure-1 example graph of the paper (politicians, studies,
    /// children), used as a fixture across the workspace.
    pub(crate) fn figure1() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        for (person, domain) in [
            ("Merkel", "Physics"),
            ("Putin", "Law"),
            ("Renzi", "Law"),
            ("Hollande", "Law"),
        ] {
            b.add_triple(person, "studied", domain);
        }
        for (parent, child) in [
            ("Obama", "Malia"),
            ("Putin", "Mariya"),
            ("Renzi", "Ester"),
            ("Renzi", "Emanuele"),
            ("Hollande", "Thomas"),
            ("Hollande", "Clémence"),
            ("Hollande", "Flora"),
            ("Hollande", "Julien"),
        ] {
            b.add_triple(parent, "hasChild", child);
        }
        for p in ["Merkel", "Obama", "Putin", "Renzi", "Hollande"] {
            let node = b.node(p);
            b.set_type(node, "politician");
        }
        b.build()
    }

    #[test]
    fn figure1_shape() {
        let g = figure1();
        assert_eq!(g.num_logical_edges(), 12);
        assert_eq!(g.num_stored_edges(), 24);
        let merkel = g.require_node("Merkel").unwrap();
        let has_child = g.labels().get("hasChild").unwrap();
        let studied = g.labels().get("studied").unwrap();
        assert_eq!(g.degree_with_label(merkel, has_child), 0);
        assert_eq!(g.degree_with_label(merkel, studied), 1);
        let hollande = g.require_node("Hollande").unwrap();
        assert_eq!(g.degree_with_label(hollande, has_child), 4);
    }

    #[test]
    fn inverse_edges_navigate_backwards() {
        let g = figure1();
        let physics = g.require_node("Physics").unwrap();
        let studied = g.labels().get("studied").unwrap();
        let inv = g.labels().inverse(studied);
        let students = g.neighbors_with_label(physics, inv);
        assert_eq!(students.len(), 1);
        assert_eq!(g.node_name(students[0]), "Merkel");
    }

    #[test]
    fn label_frequency_sums_to_one() {
        let g = figure1();
        let total: f64 = g.labels().iter().map(|l| g.label_frequency(l)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_node_is_error() {
        let g = figure1();
        assert!(matches!(
            g.require_node("Nixon"),
            Err(GraphError::UnknownNode(_))
        ));
    }

    #[test]
    fn nodes_with_type_finds_politicians() {
        let g = figure1();
        let pol = g.taxonomy().get("politician").unwrap();
        let found = g.nodes_with_type(pol);
        assert_eq!(found.len(), 5);
        // Attribute-value nodes have no type.
        let physics = g.require_node("Physics").unwrap();
        assert_eq!(g.node_type(physics), None);
    }

    #[test]
    fn labels_of_lists_incident_labels() {
        let g = figure1();
        let putin = g.require_node("Putin").unwrap();
        let names: Vec<&str> = g.labels_of(putin).map(|l| g.label_name(l)).collect();
        assert_eq!(names, vec!["studied", "hasChild"]);
    }

    #[test]
    fn edges_iterate_in_label_order() {
        let g = figure1();
        let renzi = g.require_node("Renzi").unwrap();
        let mut prev = None;
        for (l, _) in g.edges(renzi) {
            if let Some(p) = prev {
                assert!(l >= p);
            }
            prev = Some(l);
        }
        assert_eq!(g.edges(renzi).count(), g.degree(renzi));
    }
}
