//! Mutable graph construction.
//!
//! The builder interns node names, registers edge labels (automatically
//! pairing inverses per Def. 1), deduplicates exact `(s, l, t)` duplicates,
//! and finally freezes everything into an immutable [`KnowledgeGraph`].
//! For every logical edge `(s, l, t)` the stored graph also contains the
//! reverse edge `(t, l⁻¹, s)`, so a single out-edge CSR answers both
//! directions.

use crate::csr::Csr;
use crate::graph::KnowledgeGraph;
use crate::ids::{EdgeLabelId, NodeId, NodeTypeId};
use crate::interner::Interner;
use crate::schema::EdgeLabelRegistry;
use crate::taxonomy::Taxonomy;
use std::collections::HashSet;

/// Incremental builder for [`KnowledgeGraph`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    names: Interner,
    types: Vec<Option<NodeTypeId>>,
    labels: EdgeLabelRegistry,
    taxonomy: Taxonomy,
    /// Logical (forward) edges only; inverses are added at build time.
    edges: Vec<(NodeId, EdgeLabelId, NodeId)>,
    seen: HashSet<(NodeId, EdgeLabelId, NodeId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for roughly `nodes` nodes and `edges`
    /// logical edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            names: Interner::with_capacity(nodes),
            types: Vec::with_capacity(nodes),
            labels: EdgeLabelRegistry::new(),
            taxonomy: Taxonomy::new(),
            edges: Vec::with_capacity(edges),
            seen: HashSet::with_capacity(edges),
        }
    }

    /// Interns a node by name, returning its id (existing or fresh).
    pub fn node(&mut self, name: &str) -> NodeId {
        let raw = self.names.intern(name);
        if raw as usize >= self.types.len() {
            self.types.push(None);
        }
        NodeId::new(raw)
    }

    /// Interns a node and assigns it a type (later assignments overwrite).
    pub fn typed_node(&mut self, name: &str, type_name: &str) -> NodeId {
        let id = self.node(name);
        let ty = self.taxonomy.register(type_name);
        self.types[id.index()] = Some(ty);
        id
    }

    /// Sets the type of an existing node.
    pub fn set_type(&mut self, node: NodeId, type_name: &str) {
        let ty = self.taxonomy.register(type_name);
        self.types[node.index()] = Some(ty);
    }

    /// Registers (or retrieves) an edge label with an auto-named inverse.
    pub fn edge_label(&mut self, name: &str) -> EdgeLabelId {
        self.labels.register(name)
    }

    /// Registers (or retrieves) an edge label with an explicit inverse name.
    pub fn edge_label_with_inverse(&mut self, name: &str, inverse: &str) -> EdgeLabelId {
        self.labels.register_with_inverse(name, inverse)
    }

    /// Adds a logical edge by ids. Exact duplicates are ignored. Returns
    /// `true` when the edge was new.
    pub fn add_edge(&mut self, src: NodeId, label: EdgeLabelId, dst: NodeId) -> bool {
        assert!(
            src.index() < self.types.len() && dst.index() < self.types.len(),
            "edge endpoint not created through this builder"
        );
        assert!(
            label.index() < self.labels.len(),
            "edge label not registered through this builder"
        );
        if !self.seen.insert((src, label, dst)) {
            return false;
        }
        self.edges.push((src, label, dst));
        true
    }

    /// Adds a logical edge **without** consulting the duplicate set —
    /// the streaming path for bulk loads (`nck-datagen`'s scale
    /// generator), where a `HashSet` over tens of millions of edges would
    /// dwarf the graph itself.
    ///
    /// The caller must guarantee the edge is not an exact duplicate of
    /// one already added (e.g. by generating each source's out-edges once
    /// and deduplicating locally); [`build`](Self::build) trusts
    /// [`num_edges`](Self::num_edges) as the logical-edge count. Endpoint
    /// and label validity are still asserted.
    pub fn add_edge_unchecked(&mut self, src: NodeId, label: EdgeLabelId, dst: NodeId) {
        assert!(
            src.index() < self.types.len() && dst.index() < self.types.len(),
            "edge endpoint not created through this builder"
        );
        assert!(
            label.index() < self.labels.len(),
            "edge label not registered through this builder"
        );
        self.edges.push((src, label, dst));
    }

    /// Convenience: intern endpoints and label by name, then add the edge.
    pub fn add_triple(&mut self, subject: &str, predicate: &str, object: &str) -> bool {
        let s = self.node(subject);
        let l = self.edge_label(predicate);
        let o = self.node(object);
        self.add_edge(s, l, o)
    }

    /// Declares `sub` a subtype of `sup` in the taxonomy.
    pub fn subtype(&mut self, sub: &str, sup: &str) {
        let sub = self.taxonomy.register(sub);
        let sup = self.taxonomy.register(sup);
        self.taxonomy.add_subtype(sub, sup);
    }

    /// Mutable access to the taxonomy (for bulk hierarchy construction).
    pub fn taxonomy_mut(&mut self) -> &mut Taxonomy {
        &mut self.taxonomy
    }

    /// Number of nodes interned so far.
    pub fn num_nodes(&self) -> usize {
        self.types.len()
    }

    /// Number of logical edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable [`KnowledgeGraph`].
    ///
    /// Stored edges = logical edges plus one inverse per logical edge
    /// (symmetric labels get their mirror under the same label id, unless
    /// the mirror already exists as a logical edge).
    pub fn build(self) -> KnowledgeGraph {
        let num_nodes = self.types.len();
        let (stored, label_counts) = close_under_inversion(&self.labels, &self.edges);
        let csr = Csr::from_edges(num_nodes, stored);
        KnowledgeGraph::from_parts(
            self.names,
            self.types,
            self.labels,
            self.taxonomy,
            csr,
            label_counts,
            self.edges.len(),
        )
    }
}

/// Closes a logical edge set under Def.-1 inversion, the single source of
/// truth for what a backend stores: every logical edge `(s, l, t)` plus
/// its mirror `(t, l⁻¹, s)` — except that a symmetric label's mirror is
/// skipped when the mirror is itself a logical edge — sorted by
/// `(source, label, target)` and deduplicated (lexical collapsing can
/// alias logical edges). Returns the stored edges and per-label counts.
///
/// Both [`GraphBuilder::build`] and `nck-store`'s `StoreGraph` derive
/// their stored-edge statistics from this function, which is what keeps
/// the two backends id-for-id interchangeable.
pub fn close_under_inversion(
    labels: &EdgeLabelRegistry,
    logical: &[(NodeId, EdgeLabelId, NodeId)],
) -> (Vec<(NodeId, EdgeLabelId, NodeId)>, Vec<u64>) {
    // The logical-edge dedup set is only consulted for symmetric labels
    // (their mirror can coincide with an explicit logical edge). Skipping
    // it otherwise keeps the bulk path — million-edge datagen graphs with
    // ordinary paired labels — free of an O(|E|) hash set.
    let has_symmetric = labels.iter().any(|l| labels.inverse(l) == l);
    let seen: HashSet<(NodeId, EdgeLabelId, NodeId)> = if has_symmetric {
        logical.iter().copied().collect()
    } else {
        HashSet::new()
    };
    let mut stored = Vec::with_capacity(logical.len() * 2);
    for &(s, l, t) in logical {
        stored.push((s, l, t));
        let inv = labels.inverse(l);
        let mirror = (t, inv, s);
        // A symmetric label's mirror may coincide with an explicitly
        // added logical edge; the dedup set keeps the store duplicate-free.
        if inv != l || !seen.contains(&mirror) {
            stored.push(mirror);
        }
    }
    // Deduplicate stored edges: two logical edges (a,l,b) and (b,l,a)
    // with a symmetric label would otherwise both insert mirrors that
    // collide with the originals; sort + dedup is cheap and final.
    stored.sort_unstable();
    stored.dedup();
    let mut label_counts = vec![0u64; labels.len()];
    for &(_, l, _) in &stored {
        label_counts[l.index()] += 1;
    }
    (stored, label_counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_are_ignored() {
        let mut b = GraphBuilder::new();
        assert!(b.add_triple("a", "knows", "b"));
        assert!(!b.add_triple("a", "knows", "b"));
        assert_eq!(b.num_edges(), 1);
    }

    #[test]
    fn build_adds_inverse_edges() {
        let mut b = GraphBuilder::new();
        b.add_triple("a", "hasChild", "b");
        let g = b.build();
        let a = g.node_by_name("a").unwrap();
        let bb = g.node_by_name("b").unwrap();
        let has_child = g.labels().get("hasChild").unwrap();
        let inv = g.labels().inverse(has_child);
        assert_eq!(g.neighbors_with_label(a, has_child), &[bb]);
        assert_eq!(g.neighbors_with_label(bb, inv), &[a]);
        assert_eq!(g.num_logical_edges(), 1);
        assert_eq!(g.num_stored_edges(), 2);
    }

    #[test]
    fn symmetric_label_mirror_not_duplicated() {
        let mut b = GraphBuilder::new();
        let l = b.edge_label_with_inverse("isMarriedTo", "isMarriedTo");
        let x = b.node("x");
        let y = b.node("y");
        b.add_edge(x, l, y);
        b.add_edge(y, l, x); // explicit mirror
        let g = b.build();
        // Stored edges: exactly x→y and y→x once each.
        assert_eq!(g.num_stored_edges(), 2);
        assert_eq!(g.neighbors_with_label(x, l), &[y]);
        assert_eq!(g.neighbors_with_label(y, l), &[x]);
    }

    #[test]
    fn symmetric_label_single_direction_still_mirrored() {
        let mut b = GraphBuilder::new();
        let l = b.edge_label_with_inverse("marriedTo", "marriedTo");
        let x = b.node("x");
        let y = b.node("y");
        b.add_edge(x, l, y);
        let g = b.build();
        assert_eq!(g.neighbors_with_label(y, l), &[x]);
        assert_eq!(g.num_stored_edges(), 2);
    }

    #[test]
    fn typed_nodes_round_trip() {
        let mut b = GraphBuilder::new();
        let n = b.typed_node("Angela Merkel", "politician");
        let g = b.build();
        let ty = g.node_type(n).unwrap();
        assert_eq!(g.taxonomy().name(ty), "politician");
    }

    #[test]
    fn node_interning_is_stable() {
        let mut b = GraphBuilder::new();
        let a1 = b.node("a");
        b.node("b");
        let a2 = b.node("a");
        assert_eq!(a1, a2);
        assert_eq!(b.num_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn foreign_label_rejected() {
        let mut b = GraphBuilder::new();
        let x = b.node("x");
        b.add_edge(x, EdgeLabelId::new(9), x);
    }

    #[test]
    fn label_counts_match_stored_edges() {
        let mut b = GraphBuilder::new();
        b.add_triple("a", "p", "b");
        b.add_triple("a", "p", "c");
        b.add_triple("b", "q", "c");
        let g = b.build();
        let p = g.labels().get("p").unwrap();
        let q = g.labels().get("q").unwrap();
        assert_eq!(g.label_count(p), 2);
        assert_eq!(g.label_count(g.labels().inverse(p)), 2);
        assert_eq!(g.label_count(q), 1);
        let total: u64 = g.labels().iter().map(|l| g.label_count(l)).sum();
        assert_eq!(total, g.num_stored_edges() as u64);
    }
}
