//! Edge-label registry with automatic inverse labels.
//!
//! Def. 1 of the paper assumes that *"for every edge e ∈ E with type
//! ψ(e) = l exists a reverse edge e⁻¹ with ψ(e⁻¹) = l⁻¹"* (e.g.
//! `presidentOf` / `hasPresident`). The registry materializes that
//! assumption: registering a label always registers its inverse, and the
//! two ids point at each other. Inverse labels are first-class — they can
//! appear in metapaths and be reported as characteristics — but carry a
//! flag so presentation layers can filter them.

use crate::error::GraphError;
use crate::ids::EdgeLabelId;
use crate::interner::Interner;

/// Suffix appended to a forward label's name to derive its inverse's name
/// when no explicit inverse name is supplied.
pub const INVERSE_SUFFIX: &str = "⁻¹";

/// Metadata for one edge label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeLabelInfo {
    /// The label's id.
    pub id: EdgeLabelId,
    /// The id of the label's inverse (`l⁻¹`; its inverse points back).
    pub inverse: EdgeLabelId,
    /// Whether this id is the auto-generated inverse direction.
    pub is_inverse: bool,
}

/// Registry of edge labels; label ids index into its tables.
#[derive(Debug, Clone, Default)]
pub struct EdgeLabelRegistry {
    names: Interner,
    inverse: Vec<EdgeLabelId>,
    is_inverse: Vec<bool>,
}

impl EdgeLabelRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `name` (or returns the existing id) together with an
    /// auto-named inverse (`name⁻¹`).
    pub fn register(&mut self, name: &str) -> EdgeLabelId {
        self.register_with_inverse(name, &format!("{name}{INVERSE_SUFFIX}"))
    }

    /// Registers a label and its inverse under explicit names, e.g.
    /// `presidentOf` / `hasPresident`. Returns the forward id.
    ///
    /// Registering the same pair twice is idempotent. Registering `name`
    /// with a *different* inverse name than before keeps the original
    /// pairing (the first registration wins), which keeps label ids stable
    /// across incremental loads.
    pub fn register_with_inverse(&mut self, name: &str, inverse_name: &str) -> EdgeLabelId {
        if let Some(id) = self.names.get(name) {
            return EdgeLabelId::new(id);
        }
        let fwd = EdgeLabelId::new(self.names.intern(name));
        debug_assert_eq!(fwd.index(), self.inverse.len());
        if name == inverse_name {
            // Symmetric relationship (e.g. isMarriedTo): self-inverse.
            self.inverse.push(fwd);
            self.is_inverse.push(false);
            return fwd;
        }
        let inv = EdgeLabelId::new(self.names.intern(inverse_name));
        self.inverse.push(inv);
        self.is_inverse.push(false);
        debug_assert_eq!(inv.index(), self.inverse.len());
        self.inverse.push(fwd);
        self.is_inverse.push(true);
        fwd
    }

    /// The id registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<EdgeLabelId> {
        self.names.get(name).map(EdgeLabelId::new)
    }

    /// The id registered under `name`, or an [`GraphError::UnknownEdgeLabel`].
    pub fn require(&self, name: &str) -> Result<EdgeLabelId, GraphError> {
        self.get(name)
            .ok_or_else(|| GraphError::UnknownEdgeLabel(name.to_owned()))
    }

    /// The name of label `id`.
    pub fn name(&self, id: EdgeLabelId) -> &str {
        self.names.resolve(id.raw())
    }

    /// The inverse of label `id`.
    pub fn inverse(&self, id: EdgeLabelId) -> EdgeLabelId {
        self.inverse[id.index()]
    }

    /// Whether `id` is an auto-generated inverse direction.
    pub fn is_inverse(&self, id: EdgeLabelId) -> bool {
        self.is_inverse[id.index()]
    }

    /// Full metadata for `id`.
    pub fn info(&self, id: EdgeLabelId) -> EdgeLabelInfo {
        EdgeLabelInfo {
            id,
            inverse: self.inverse(id),
            is_inverse: self.is_inverse(id),
        }
    }

    /// Number of registered labels (forward + inverse directions).
    pub fn len(&self) -> usize {
        self.inverse.len()
    }

    /// True when no label is registered.
    pub fn is_empty(&self) -> bool {
        self.inverse.is_empty()
    }

    /// Iterates over all label ids (both directions).
    pub fn iter(&self) -> impl Iterator<Item = EdgeLabelId> + '_ {
        (0..self.len() as u32).map(EdgeLabelId::new)
    }

    /// Iterates over forward (non-inverse) label ids only.
    pub fn iter_forward(&self) -> impl Iterator<Item = EdgeLabelId> + '_ {
        self.iter().filter(|&l| !self.is_inverse(l))
    }

    /// Approximate resident heap bytes of the registry.
    pub fn approx_bytes(&self) -> usize {
        self.names.approx_bytes() + self.inverse.capacity() * 4 + self.is_inverse.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_creates_paired_inverse() {
        let mut r = EdgeLabelRegistry::new();
        let has_child = r.register("hasChild");
        let inv = r.inverse(has_child);
        assert_ne!(has_child, inv);
        assert_eq!(r.inverse(inv), has_child);
        assert_eq!(r.name(inv), "hasChild⁻¹");
        assert!(!r.is_inverse(has_child));
        assert!(r.is_inverse(inv));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn register_is_idempotent() {
        let mut r = EdgeLabelRegistry::new();
        let a = r.register("studied");
        let b = r.register("studied");
        assert_eq!(a, b);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn explicit_inverse_names() {
        let mut r = EdgeLabelRegistry::new();
        let pres = r.register_with_inverse("presidentOf", "hasPresident");
        let inv = r.inverse(pres);
        assert_eq!(r.name(inv), "hasPresident");
        assert!(r.is_inverse(inv));
        // Looking up by the inverse name finds the inverse id.
        assert_eq!(r.get("hasPresident"), Some(inv));
    }

    #[test]
    fn symmetric_labels_are_self_inverse() {
        let mut r = EdgeLabelRegistry::new();
        let married = r.register_with_inverse("isMarriedTo", "isMarriedTo");
        assert_eq!(r.inverse(married), married);
        assert!(!r.is_inverse(married));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn require_reports_unknown_labels() {
        let r = EdgeLabelRegistry::new();
        match r.require("nope") {
            Err(GraphError::UnknownEdgeLabel(name)) => assert_eq!(name, "nope"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn iter_forward_skips_inverses() {
        let mut r = EdgeLabelRegistry::new();
        r.register("a");
        r.register("b");
        r.register_with_inverse("sym", "sym");
        let forward: Vec<String> = r.iter_forward().map(|l| r.name(l).to_owned()).collect();
        assert_eq!(forward, vec!["a", "b", "sym"]);
        assert_eq!(r.iter().count(), 5);
    }

    #[test]
    fn first_registration_wins_on_conflicting_inverse() {
        let mut r = EdgeLabelRegistry::new();
        let a = r.register_with_inverse("leads", "ledBy");
        let a2 = r.register_with_inverse("leads", "otherInverse");
        assert_eq!(a, a2);
        assert_eq!(r.name(r.inverse(a)), "ledBy");
        assert_eq!(r.get("otherInverse"), None);
    }

    #[test]
    fn info_bundles_metadata() {
        let mut r = EdgeLabelRegistry::new();
        let l = r.register("owns");
        let info = r.info(l);
        assert_eq!(info.id, l);
        assert_eq!(info.inverse, r.inverse(l));
        assert!(!info.is_inverse);
    }
}
