//! Graph statistics: label frequencies and degree distributions.
//!
//! Eq. 1 of the paper turns label frequency into an informativeness weight
//! (`A_ij = 1 − |E_l|/|E|`); the generators in `nck-datagen` are validated
//! against these statistics (heavy-tailed label usage, skewed degrees) so
//! the synthetic data stresses the same regime as YAGO.

use crate::graph::KnowledgeGraph;
use crate::ids::EdgeLabelId;

/// Frequency record for one edge label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelFrequency {
    /// The label.
    pub label: EdgeLabelId,
    /// Stored-edge count `|E_l|`.
    pub count: u64,
    /// Relative frequency `|E_l| / |E|`.
    pub frequency: f64,
    /// Eq. 1 informativeness weight `1 − frequency`.
    pub weight: f64,
}

/// Aggregate statistics of a [`KnowledgeGraph`].
#[derive(Debug, Clone)]
pub struct GraphStatistics {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of logical edges.
    pub num_logical_edges: usize,
    /// Number of stored edges (with inverses).
    pub num_stored_edges: usize,
    /// Per-label frequency records, descending by count.
    pub label_frequencies: Vec<LabelFrequency>,
    /// Histogram of out-degrees: `degree_histogram[d]` = #nodes of degree d
    /// (clamped into the last bucket).
    pub degree_histogram: Vec<u64>,
    /// Maximum out-degree observed.
    pub max_degree: usize,
    /// Mean out-degree over stored edges.
    pub mean_degree: f64,
}

/// Largest exactly-resolved degree bucket; larger degrees clamp.
const DEGREE_BUCKETS: usize = 64;

impl GraphStatistics {
    /// Computes statistics with a single pass over nodes and labels.
    pub fn compute(graph: &KnowledgeGraph) -> Self {
        let mut label_frequencies: Vec<LabelFrequency> = graph
            .labels()
            .iter()
            .map(|label| {
                let count = graph.label_count(label);
                let frequency = graph.label_frequency(label);
                LabelFrequency {
                    label,
                    count,
                    frequency,
                    weight: 1.0 - frequency,
                }
            })
            .collect();
        label_frequencies.sort_by(|a, b| b.count.cmp(&a.count).then(a.label.cmp(&b.label)));

        let mut degree_histogram = vec![0u64; DEGREE_BUCKETS + 1];
        let mut max_degree = 0usize;
        let mut total_degree = 0usize;
        for v in graph.nodes() {
            let d = graph.degree(v);
            max_degree = max_degree.max(d);
            total_degree += d;
            degree_histogram[d.min(DEGREE_BUCKETS)] += 1;
        }
        let mean_degree = if graph.num_nodes() == 0 {
            0.0
        } else {
            total_degree as f64 / graph.num_nodes() as f64
        };
        Self {
            num_nodes: graph.num_nodes(),
            num_logical_edges: graph.num_logical_edges(),
            num_stored_edges: graph.num_stored_edges(),
            label_frequencies,
            degree_histogram,
            max_degree,
            mean_degree,
        }
    }

    /// The `k` most frequent labels.
    pub fn top_labels(&self, k: usize) -> &[LabelFrequency] {
        &self.label_frequencies[..k.min(self.label_frequencies.len())]
    }

    /// Gini coefficient of the label-count distribution — a scalar check
    /// that label usage is skewed (YAGO-like) rather than uniform.
    pub fn label_gini(&self) -> f64 {
        let counts: Vec<f64> = self
            .label_frequencies
            .iter()
            .map(|l| l.count as f64)
            .collect();
        gini(&counts)
    }
}

/// Gini coefficient of a non-negative vector (0 = uniform, →1 = skewed).
fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in gini"));
    let sum: f64 = sorted.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v)
        .sum();
    (2.0 * weighted) / (n as f64 * sum) - (n as f64 + 1.0) / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn small() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add_triple("a", "p", "b");
        b.add_triple("a", "p", "c");
        b.add_triple("a", "p", "d");
        b.add_triple("a", "q", "b");
        b.build()
    }

    #[test]
    fn counts_are_consistent() {
        let s = GraphStatistics::compute(&small());
        assert_eq!(s.num_logical_edges, 4);
        assert_eq!(s.num_stored_edges, 8);
        let total: u64 = s.label_frequencies.iter().map(|l| l.count).sum();
        assert_eq!(total, 8);
        let freq_sum: f64 = s.label_frequencies.iter().map(|l| l.frequency).sum();
        assert!((freq_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequencies_sorted_descending() {
        let s = GraphStatistics::compute(&small());
        for w in s.label_frequencies.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        assert_eq!(s.top_labels(1)[0].count, 3);
        assert_eq!(s.top_labels(100).len(), s.label_frequencies.len());
    }

    #[test]
    fn weight_is_one_minus_frequency() {
        let s = GraphStatistics::compute(&small());
        for l in &s.label_frequencies {
            assert!((l.weight - (1.0 - l.frequency)).abs() < 1e-12);
        }
    }

    #[test]
    fn degree_histogram_accounts_for_every_node() {
        let g = small();
        let s = GraphStatistics::compute(&g);
        let total: u64 = s.degree_histogram.iter().sum();
        assert_eq!(total as usize, g.num_nodes());
        assert_eq!(s.max_degree, 4); // node `a`: 3×p + 1×q out
        assert!(s.mean_degree > 0.0);
    }

    #[test]
    fn gini_of_uniform_is_zero() {
        assert!(gini(&[2.0, 2.0, 2.0]).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn gini_detects_skew() {
        let skewed = gini(&[100.0, 1.0, 1.0, 1.0]);
        let flat = gini(&[26.0, 26.0, 26.0, 25.0]);
        assert!(skewed > flat);
        assert!(skewed > 0.5);
    }
}
