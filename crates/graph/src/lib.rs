//! # nck-graph — knowledge-graph substrate
//!
//! The paper (Def. 1) models a knowledge graph as `G = ⟨V, E, φ, ψ⟩`: a
//! directed graph whose nodes and edges carry labels, where every edge
//! `e` with label `l` has a reverse edge `e⁻¹` labeled `l⁻¹`, and where
//! attributes (birth dates, prize names, …) are themselves nodes attached
//! through labeled edges. This crate is that substrate:
//!
//! - [`access`] — the backend-generic [`GraphAccess`] trait every
//!   algorithm crate programs against (the CSR graph here and the
//!   triple-store-backed `StoreGraph` in `nck-store` both implement it);
//! - [`erased`] — runtime backend dispatch: the object-safe
//!   [`DynGraphAccess`] mirror and the [`ErasedGraph`] adapter that turns
//!   `Arc<dyn DynGraphAccess>` back into a [`GraphAccess`] backend;
//! - [`ids`] — compact `u32` identifiers for nodes, node types and edge
//!   labels (the graph is fully dictionary-encoded);
//! - [`interner`] — the string dictionary;
//! - [`schema`] — the edge-label registry with automatic inverse labels;
//! - [`builder`] — mutable construction API deduplicating parallel edges;
//! - [`csr`] — compressed sparse row adjacency, per-node runs sorted by
//!   label so metapath-constrained traversals can binary-search;
//! - [`compact`] — the memory-compact backend: delta/varint-encoded
//!   adjacency over degree-relabeled `u32` ids, parsed zero-copy from a
//!   checksummed binary image ([`CompactGraph`]);
//! - [`varint`] — the LEB128 + delta run codec the compact backend uses;
//! - [`graph`] — the immutable [`KnowledgeGraph`] query API;
//! - [`taxonomy`] — the node-type hierarchy (YAGO's `subclassOf` DAG);
//! - [`stats`] — label-frequency and degree statistics feeding Eq. 1;
//! - [`io`] — exchange formats: TSV triples and the compact binary graph
//!   file (with a memory-mapped zero-copy loader on Unix).

// `deny` rather than `forbid` so the one mmap module can locally allow
// its two syscall bindings; everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod builder;
pub mod compact;
pub mod csr;
pub mod erased;
pub mod error;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod io;
pub mod schema;
pub mod stats;
pub mod taxonomy;
pub mod varint;

pub use access::GraphAccess;
pub use builder::GraphBuilder;
pub use compact::CompactGraph;
pub use erased::{DynGraphAccess, ErasedGraph};
pub use error::GraphError;
pub use graph::KnowledgeGraph;
pub use ids::{EdgeLabelId, NodeId, NodeTypeId};
pub use schema::EdgeLabelInfo;
pub use taxonomy::Taxonomy;
