//! Error type for graph construction, lookup and I/O.

use std::fmt;

/// Errors surfaced by the knowledge-graph substrate.
#[derive(Debug)]
pub enum GraphError {
    /// A node name was not found in the dictionary.
    UnknownNode(String),
    /// A node id was out of range for this graph.
    InvalidNodeId(u32),
    /// An edge label name was not found in the registry.
    UnknownEdgeLabel(String),
    /// A node type name was not found in the taxonomy.
    UnknownNodeType(String),
    /// A cycle was detected where a DAG is required (taxonomy).
    TaxonomyCycle(String),
    /// A line of an input file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A compact binary graph file was malformed, corrupt or unsupported
    /// (bad magic, wrong version, truncation, checksum mismatch,
    /// inconsistent tables).
    Format(String),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(name) => write!(f, "unknown node: {name:?}"),
            GraphError::InvalidNodeId(id) => write!(f, "node id {id} out of range"),
            GraphError::UnknownEdgeLabel(name) => write!(f, "unknown edge label: {name:?}"),
            GraphError::UnknownNodeType(name) => write!(f, "unknown node type: {name:?}"),
            GraphError::TaxonomyCycle(name) => {
                write!(f, "taxonomy cycle involving type {name:?}")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Format(message) => {
                write!(f, "invalid compact graph file: {message}")
            }
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GraphError::UnknownNode("X".into())
            .to_string()
            .contains("X"));
        assert!(GraphError::Parse {
            line: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("line 3"));
        let io = GraphError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let io = GraphError::from(std::io::Error::other("boom"));
        assert!(io.source().is_some());
        assert!(GraphError::InvalidNodeId(1).source().is_none());
    }
}
