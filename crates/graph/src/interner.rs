//! Two-way string dictionary.
//!
//! Every entity name, attribute value, edge label and type name is interned
//! once; the rest of the system works with `u32` ids. Lookup by name is
//! O(1) via a hash map over the interned storage.

use std::collections::HashMap;

/// A string interner mapping `&str` ↔ dense `u32` indexes.
///
/// Indexes are assigned in insertion order starting at 0 and never change,
/// which lets callers use them directly as slice offsets.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<Box<str>>,
    index: HashMap<Box<str>, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with capacity for `n` strings.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            strings: Vec::with_capacity(n),
            index: HashMap::with_capacity(n),
        }
    }

    /// Interns `s`, returning its index (existing or fresh).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = u32::try_from(self.strings.len()).expect("interner exhausted u32 index space");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, i);
        i
    }

    /// Index of `s` if it was interned before.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` was never issued by this interner.
    pub fn resolve(&self, index: u32) -> &str {
        &self.strings[index as usize]
    }

    /// The string at `index`, or `None` when out of range.
    pub fn try_resolve(&self, index: u32) -> Option<&str> {
        self.strings.get(index as usize).map(|s| &**s)
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Approximate resident heap bytes: string payloads (stored twice —
    /// once in the vector, once as the hash-map key), the `Box<str>` fat
    /// pointers, and a conservative per-entry hash-map cost.
    pub fn approx_bytes(&self) -> usize {
        let payload: usize = self.strings.iter().map(|s| s.len()).sum();
        2 * payload + self.strings.capacity() * 16 + self.index.capacity() * 32
    }

    /// Iterates over `(index, string)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Angela Merkel");
        let b = i.intern("Angela Merkel");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn indexes_are_dense_in_insertion_order() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("c"), 2);
        assert_eq!(i.intern("b"), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let idx = i.intern("Barack Obama");
        assert_eq!(i.resolve(idx), "Barack Obama");
        assert_eq!(i.get("Barack Obama"), Some(idx));
        assert_eq!(i.get("nobody"), None);
        assert_eq!(i.try_resolve(999), None);
    }

    #[test]
    fn empty_string_is_internable() {
        let mut i = Interner::new();
        let idx = i.intern("");
        assert_eq!(i.resolve(idx), "");
    }

    #[test]
    fn iter_yields_all_pairs() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let pairs: Vec<_> = i.iter().collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn unicode_names_survive() {
        let mut i = Interner::new();
        let idx = i.intern("François Hollande");
        assert_eq!(i.resolve(idx), "François Hollande");
    }
}
