//! Runtime-erased graph backends: [`DynGraphAccess`] and [`ErasedGraph`].
//!
//! [`GraphAccess`] uses generic associated types for its iterators, so it
//! is not object safe — `dyn GraphAccess` does not exist, and every layer
//! that wanted runtime backend selection had to hand-roll its own
//! dispatch shim (the `nck` CLI once carried a private `DynGraph` trait
//! for exactly this). This module promotes that capability into the
//! library:
//!
//! - [`DynGraphAccess`] is the **object-safe** mirror of [`GraphAccess`]
//!   (boxed iterators instead of GATs), blanket-implemented for every
//!   backend, so `Arc<dyn DynGraphAccess>` works for any of them;
//! - [`ErasedGraph`] wraps that trait object back up as a [`GraphAccess`]
//!   implementation, so the whole generic pipeline — `FindNc`, the
//!   selectors, `QueryEngine` — runs unchanged over a backend chosen at
//!   runtime.
//!
//! Erasure is exact: every method forwards to the underlying backend, so
//! results are id-for-id identical to running the concrete type (the
//! workspace's `engine_parity` suite asserts this for both backends).
//! The cost is one heap allocation per `edges`/`labels_of` iterator and a
//! virtual call per method — fine for a service façade front door, wrong
//! for a hot inner loop you could monomorphize instead.

use crate::access::GraphAccess;
use crate::ids::{EdgeLabelId, NodeId, NodeTypeId};
use crate::schema::EdgeLabelRegistry;
use crate::taxonomy::Taxonomy;
use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// Boxed edge iterator returned by erased backends.
pub type BoxedEdges<'a> = Box<dyn Iterator<Item = (EdgeLabelId, NodeId)> + 'a>;

/// Boxed distinct-label iterator returned by erased backends.
pub type BoxedLabels<'a> = Box<dyn Iterator<Item = EdgeLabelId> + 'a>;

/// Object-safe mirror of [`GraphAccess`].
///
/// # Object safety contract
///
/// This trait exists to be used as `dyn DynGraphAccess`, so it must stay
/// object safe: every method takes `&self`, has no generic parameters,
/// never mentions `Self` outside the receiver, and the GAT-based
/// iterators of [`GraphAccess`] are replaced by boxed trait objects
/// ([`edges_boxed`](Self::edges_boxed),
/// [`labels_of_boxed`](Self::labels_of_boxed)). `Send + Sync` are
/// supertraits because erased backends are shared across the engine's
/// worker threads behind an `Arc`.
///
/// Do not implement this trait by hand: the blanket impl covers **every**
/// [`GraphAccess`] backend (that is what keeps erased and generic
/// execution identical), and a manual implementation risks diverging
/// from the [`GraphAccess` contract](crate::access) — Def.-1 closure,
/// sorted per-label runs, dense stable ids, consistent statistics — which
/// erased callers rely on exactly as generic callers do.
pub trait DynGraphAccess: Send + Sync {
    /// Number of nodes `|V|` (see [`GraphAccess::num_nodes`]).
    fn num_nodes(&self) -> usize;

    /// Number of stored directed edges (see
    /// [`GraphAccess::num_stored_edges`]).
    fn num_stored_edges(&self) -> usize;

    /// The name of `node` (see [`GraphAccess::node_name`]).
    fn node_name(&self, node: NodeId) -> &str;

    /// Looks a node up by name (see [`GraphAccess::node_by_name`]).
    fn node_by_name(&self, name: &str) -> Option<NodeId>;

    /// The node's type (see [`GraphAccess::node_type`]).
    fn node_type(&self, node: NodeId) -> Option<NodeTypeId>;

    /// The node-type taxonomy (see [`GraphAccess::taxonomy`]).
    fn taxonomy(&self) -> &Taxonomy;

    /// Out-degree over stored edges (see [`GraphAccess::degree`]).
    fn degree(&self, node: NodeId) -> usize;

    /// Boxed form of [`GraphAccess::edges`]: `(label, target)` pairs,
    /// grouped by ascending label.
    fn edges_boxed(&self, node: NodeId) -> BoxedEdges<'_>;

    /// The `i`-th stored out-edge (see [`GraphAccess::edge_at`]).
    fn edge_at(&self, node: NodeId, i: usize) -> (EdgeLabelId, NodeId);

    /// Targets of `node`'s out-edges labeled `label` (see
    /// [`GraphAccess::neighbors_with_label`]).
    fn neighbors_with_label(&self, node: NodeId, label: EdgeLabelId) -> Cow<'_, [NodeId]>;

    /// Boxed form of [`GraphAccess::labels_of`]: distinct labels,
    /// ascending.
    fn labels_of_boxed(&self, node: NodeId) -> BoxedLabels<'_>;

    /// The edge-label registry (see [`GraphAccess::labels`]).
    fn labels(&self) -> &EdgeLabelRegistry;

    /// Stored-edge count of `label` (see [`GraphAccess::label_count`]).
    fn label_count(&self, label: EdgeLabelId) -> u64;

    /// Forwards [`GraphAccess::warm_predicate`] — erasure must not turn a
    /// lazily materializing backend's warm hook into a no-op.
    fn warm_predicate(&self, label: EdgeLabelId);

    /// Approximate resident bytes (see [`GraphAccess::approx_bytes`]) —
    /// forwarded so the stats surface reports the real backend's
    /// footprint, not the erasure shim's.
    fn approx_bytes(&self) -> usize;
}

impl<G: GraphAccess + Send + Sync> DynGraphAccess for G {
    fn num_nodes(&self) -> usize {
        GraphAccess::num_nodes(self)
    }

    fn num_stored_edges(&self) -> usize {
        GraphAccess::num_stored_edges(self)
    }

    fn node_name(&self, node: NodeId) -> &str {
        GraphAccess::node_name(self, node)
    }

    fn node_by_name(&self, name: &str) -> Option<NodeId> {
        GraphAccess::node_by_name(self, name)
    }

    fn node_type(&self, node: NodeId) -> Option<NodeTypeId> {
        GraphAccess::node_type(self, node)
    }

    fn taxonomy(&self) -> &Taxonomy {
        GraphAccess::taxonomy(self)
    }

    fn degree(&self, node: NodeId) -> usize {
        GraphAccess::degree(self, node)
    }

    fn edges_boxed(&self, node: NodeId) -> BoxedEdges<'_> {
        Box::new(GraphAccess::edges(self, node))
    }

    fn edge_at(&self, node: NodeId, i: usize) -> (EdgeLabelId, NodeId) {
        GraphAccess::edge_at(self, node, i)
    }

    fn neighbors_with_label(&self, node: NodeId, label: EdgeLabelId) -> Cow<'_, [NodeId]> {
        GraphAccess::neighbors_with_label(self, node, label)
    }

    fn labels_of_boxed(&self, node: NodeId) -> BoxedLabels<'_> {
        Box::new(GraphAccess::labels_of(self, node))
    }

    fn labels(&self) -> &EdgeLabelRegistry {
        GraphAccess::labels(self)
    }

    fn label_count(&self, label: EdgeLabelId) -> u64 {
        GraphAccess::label_count(self, label)
    }

    fn warm_predicate(&self, label: EdgeLabelId) {
        GraphAccess::warm_predicate(self, label)
    }

    fn approx_bytes(&self) -> usize {
        GraphAccess::approx_bytes(self)
    }
}

/// A reference-counted, runtime-chosen graph backend that itself
/// implements [`GraphAccess`].
///
/// `ErasedGraph` is `Clone` (an `Arc` bump), `Send + Sync`, and exact:
/// the generic pipeline produces bit-identical results through it. Build
/// one with [`ErasedGraph::new`] from any owned backend, or
/// [`ErasedGraph::from_arc`] to share an already-`Arc`ed one.
#[derive(Clone)]
pub struct ErasedGraph {
    inner: Arc<dyn DynGraphAccess>,
}

impl ErasedGraph {
    /// Erases an owned backend.
    pub fn new<G>(backend: G) -> Self
    where
        G: GraphAccess + Send + Sync + 'static,
    {
        Self {
            inner: Arc::new(backend),
        }
    }

    /// Erases a shared backend without another allocation.
    pub fn from_arc<G>(backend: Arc<G>) -> Self
    where
        G: GraphAccess + Send + Sync + 'static,
    {
        Self { inner: backend }
    }

    /// The underlying trait object (for callers that want dynamic access
    /// without the [`GraphAccess`] adapter).
    pub fn backend(&self) -> &dyn DynGraphAccess {
        &*self.inner
    }
}

impl fmt::Debug for ErasedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ErasedGraph")
            .field("num_nodes", &self.inner.num_nodes())
            .field("num_stored_edges", &self.inner.num_stored_edges())
            .finish_non_exhaustive()
    }
}

impl GraphAccess for ErasedGraph {
    type Edges<'a> = BoxedEdges<'a>;
    type Labels<'a> = BoxedLabels<'a>;

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn num_stored_edges(&self) -> usize {
        self.inner.num_stored_edges()
    }

    fn node_name(&self, node: NodeId) -> &str {
        self.inner.node_name(node)
    }

    fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.inner.node_by_name(name)
    }

    fn node_type(&self, node: NodeId) -> Option<NodeTypeId> {
        self.inner.node_type(node)
    }

    fn taxonomy(&self) -> &Taxonomy {
        self.inner.taxonomy()
    }

    fn degree(&self, node: NodeId) -> usize {
        self.inner.degree(node)
    }

    fn edges(&self, node: NodeId) -> BoxedEdges<'_> {
        self.inner.edges_boxed(node)
    }

    fn edge_at(&self, node: NodeId, i: usize) -> (EdgeLabelId, NodeId) {
        self.inner.edge_at(node, i)
    }

    fn neighbors_with_label(&self, node: NodeId, label: EdgeLabelId) -> Cow<'_, [NodeId]> {
        self.inner.neighbors_with_label(node, label)
    }

    fn labels_of(&self, node: NodeId) -> BoxedLabels<'_> {
        self.inner.labels_of_boxed(node)
    }

    fn labels(&self) -> &EdgeLabelRegistry {
        self.inner.labels()
    }

    fn label_count(&self, label: EdgeLabelId) -> u64 {
        self.inner.label_count(label)
    }

    fn warm_predicate(&self, label: EdgeLabelId) {
        self.inner.warm_predicate(label)
    }

    fn approx_bytes(&self) -> usize {
        self.inner.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::KnowledgeGraph;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add_triple("a", "knows", "b");
        b.add_triple("a", "likes", "c");
        b.add_triple("b", "knows", "c");
        b.typed_node("a", "person");
        b.build()
    }

    #[test]
    fn erased_graph_matches_concrete_backend() {
        let g = sample();
        let erased = ErasedGraph::new(g.clone());
        assert_eq!(GraphAccess::num_nodes(&g), GraphAccess::num_nodes(&erased));
        assert_eq!(
            GraphAccess::num_stored_edges(&g),
            GraphAccess::num_stored_edges(&erased)
        );
        for v in GraphAccess::nodes(&g) {
            assert_eq!(GraphAccess::degree(&g, v), GraphAccess::degree(&erased, v));
            assert_eq!(
                GraphAccess::node_name(&g, v),
                GraphAccess::node_name(&erased, v)
            );
            let concrete: Vec<_> = GraphAccess::edges(&g, v).collect();
            let boxed: Vec<_> = GraphAccess::edges(&erased, v).collect();
            assert_eq!(concrete, boxed);
            let lc: Vec<_> = GraphAccess::labels_of(&g, v).collect();
            let le: Vec<_> = GraphAccess::labels_of(&erased, v).collect();
            assert_eq!(lc, le);
            for i in 0..GraphAccess::degree(&g, v) {
                assert_eq!(
                    GraphAccess::edge_at(&g, v, i),
                    GraphAccess::edge_at(&erased, v, i)
                );
            }
        }
        let knows = GraphAccess::labels(&erased).get("knows").unwrap();
        let a = GraphAccess::require_node(&erased, "a").unwrap();
        assert_eq!(
            GraphAccess::neighbors_with_label(&g, a, knows),
            GraphAccess::neighbors_with_label(&erased, a, knows)
        );
        assert_eq!(
            GraphAccess::label_count(&g, knows),
            GraphAccess::label_count(&erased, knows)
        );
    }

    #[test]
    fn erased_graph_is_cheaply_cloneable_and_shareable() {
        let n = sample().num_nodes();
        let erased = ErasedGraph::new(sample());
        let clone = erased.clone();
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(GraphAccess::num_nodes(&clone), n);
            });
        });
        assert_eq!(GraphAccess::num_nodes(&erased), n);
    }

    #[test]
    fn from_arc_shares_without_rewrapping() {
        let shared = Arc::new(sample());
        let erased = ErasedGraph::from_arc(Arc::clone(&shared));
        assert_eq!(GraphAccess::num_nodes(&erased), shared.num_nodes());
    }

    /// Generic code runs over `ErasedGraph` unchanged — the whole point.
    fn total_degree<G: GraphAccess>(g: &G) -> usize {
        g.nodes().map(|v| g.degree(v)).sum()
    }

    #[test]
    fn generic_functions_accept_erased_graphs() {
        let erased = ErasedGraph::new(sample());
        assert_eq!(
            total_degree(&erased),
            GraphAccess::num_stored_edges(&erased)
        );
    }
}
