//! TSV triple exchange format.
//!
//! One triple per line, `subject \t predicate \t object`, UTF-8, `#`
//! comments. Node types are encoded as triples with the reserved predicate
//! [`TYPE_PREDICATE`]; subtype declarations with [`SUBTYPE_PREDICATE`].
//! Inverse-direction edges are never written (they are reconstructed on
//! load), so a file round-trips the *logical* graph.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::KnowledgeGraph;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Reserved predicate assigning a node its type.
pub const TYPE_PREDICATE: &str = "rdf:type";
/// Reserved predicate declaring `subject ⊑ object` in the taxonomy.
pub const SUBTYPE_PREDICATE: &str = "rdfs:subClassOf";

/// Writes `graph` as TSV triples.
pub fn write_tsv<W: Write>(graph: &KnowledgeGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    // Types first, then subtype axioms, then logical edges.
    for node in graph.nodes() {
        if let Some(ty) = graph.node_type(node) {
            writeln!(
                w,
                "{}\t{}\t{}",
                graph.node_name(node),
                TYPE_PREDICATE,
                graph.taxonomy().name(ty)
            )?;
        }
    }
    for i in 0..graph.taxonomy().len() {
        let ty = crate::ids::NodeTypeId::from_index(i);
        for &sup in graph.taxonomy().parents(ty) {
            writeln!(
                w,
                "{}\t{}\t{}",
                graph.taxonomy().name(ty),
                SUBTYPE_PREDICATE,
                graph.taxonomy().name(sup)
            )?;
        }
    }
    for node in graph.nodes() {
        for (label, target) in graph.edges(node) {
            if graph.labels().is_inverse(label) {
                continue;
            }
            // Symmetric labels store both directions; write each logical
            // edge once by keeping only the canonical orientation.
            if graph.labels().inverse(label) == label && target < node {
                continue;
            }
            writeln!(
                w,
                "{}\t{}\t{}",
                graph.node_name(node),
                graph.label_name(label),
                graph.node_name(target)
            )?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Saves `graph` to a TSV file.
pub fn save_tsv<P: AsRef<Path>>(graph: &KnowledgeGraph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_tsv(graph, file)
}

/// Reads a graph from TSV triples.
pub fn read_tsv<R: Read>(reader: R) -> Result<KnowledgeGraph, GraphError> {
    let mut builder = GraphBuilder::new();
    let r = BufReader::new(reader);
    let mut line_buf = String::new();
    let mut r = r;
    let mut line_no = 0usize;
    loop {
        line_buf.clear();
        let read = r.read_line(&mut line_buf)?;
        if read == 0 {
            break;
        }
        line_no += 1;
        let line = line_buf.trim_end_matches(['\n', '\r']);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split('\t');
        let (s, p, o) = match (fields.next(), fields.next(), fields.next()) {
            (Some(s), Some(p), Some(o)) if fields.next().is_none() => (s, p, o),
            _ => {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("expected 3 tab-separated fields, got: {line:?}"),
                })
            }
        };
        if s.is_empty() || p.is_empty() || o.is_empty() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "empty field".into(),
            });
        }
        match p {
            TYPE_PREDICATE => {
                let node = builder.node(s);
                builder.set_type(node, o);
            }
            SUBTYPE_PREDICATE => builder.subtype(s, o),
            _ => {
                builder.add_triple(s, p, o);
            }
        }
    }
    Ok(builder.build())
}

/// Loads a graph from a TSV file.
pub fn load_tsv<P: AsRef<Path>>(path: P) -> Result<KnowledgeGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_tsv(file)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add_triple("Merkel", "studied", "Physics");
        b.add_triple("Hollande", "hasChild", "Thomas");
        b.add_triple("Hollande", "hasChild", "Flora");
        let n = b.node("Merkel");
        b.set_type(n, "politician");
        let n = b.node("Hollande");
        b.set_type(n, "politician");
        b.subtype("politician", "person");
        b.build()
    }

    #[test]
    fn round_trip_preserves_logical_graph() {
        let g = sample();
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let g2 = read_tsv(&buf[..]).unwrap();
        assert_eq!(g2.num_logical_edges(), g.num_logical_edges());
        assert_eq!(g2.num_nodes(), g.num_nodes());
        let hollande = g2.require_node("Hollande").unwrap();
        let has_child = g2.labels().get("hasChild").unwrap();
        assert_eq!(g2.degree_with_label(hollande, has_child), 2);
        // Types and taxonomy survive.
        let ty = g2.node_type(hollande).unwrap();
        assert_eq!(g2.taxonomy().name(ty), "politician");
        let person = g2.taxonomy().get("person").unwrap();
        assert!(g2.taxonomy().is_subtype(ty, person));
    }

    #[test]
    fn inverse_edges_not_written_but_reconstructed() {
        let g = sample();
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(!text.contains('\u{207B}'), "no inverse labels in file");
        let g2 = read_tsv(&buf[..]).unwrap();
        let thomas = g2.require_node("Thomas").unwrap();
        let has_child = g2.labels().get("hasChild").unwrap();
        let inv = g2.labels().inverse(has_child);
        assert_eq!(g2.degree_with_label(thomas, inv), 1);
    }

    #[test]
    fn symmetric_labels_round_trip_once() {
        let mut b = GraphBuilder::new();
        let l = b.edge_label_with_inverse("isMarriedTo", "isMarriedTo");
        let x = b.node("x");
        let y = b.node("y");
        b.add_edge(x, l, y);
        let g = b.build();
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.matches("isMarriedTo").count(), 1, "{text}");
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let input = b"# a comment\n\nMerkel\tstudied\tPhysics\n";
        let g = read_tsv(&input[..]).unwrap();
        assert_eq!(g.num_logical_edges(), 1);
    }

    #[test]
    fn malformed_lines_reported_with_line_number() {
        let input = b"Merkel\tstudied\tPhysics\nbroken line\n";
        match read_tsv(&input[..]) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected: {other:?}"),
        }
        let input = b"a\tb\tc\td\n";
        assert!(matches!(
            read_tsv(&input[..]),
            Err(GraphError::Parse { line: 1, .. })
        ));
        let input = b"a\t\tc\n";
        assert!(matches!(
            read_tsv(&input[..]),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("nck_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.tsv");
        let g = sample();
        save_tsv(&g, &path).unwrap();
        let g2 = load_tsv(&path).unwrap();
        assert_eq!(g2.num_logical_edges(), g.num_logical_edges());
        std::fs::remove_file(&path).ok();
    }
}
