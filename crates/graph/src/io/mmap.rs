//! Minimal read-only memory mapping for the zero-copy graph loader.
//!
//! This is the one module in `nck-graph` allowed to use `unsafe` (the
//! crate is `#![deny(unsafe_code)]` everywhere else): two raw `mmap` /
//! `munmap` syscall bindings and the slice view over the mapping. The
//! surface is deliberately tiny — read-only, private, whole-file
//! mappings, nothing else — and every consumer goes through
//! [`Mmap::as_slice`], after which the compact-graph parser treats the
//! bytes exactly like an owned buffer (all decoding is `from_le_bytes`
//! on byte slices; the mapping is never reinterpreted as typed memory,
//! so alignment never comes into play).
//!
//! Not available off Unix; [`crate::io::load_compact`] falls back to a
//! single `std::fs::read` there.
#![allow(unsafe_code)]

#[cfg(unix)]
pub use unix::Mmap;

use std::sync::atomic::{AtomicBool, Ordering};

/// Failure-injection switch for the owned-read fallback path.
static FORCE_OWNED_FALLBACK: AtomicBool = AtomicBool::new(false);

/// Testing hook: while set, [`Mmap::map`] declines every mapping
/// (reports `Ok(None)`, exactly as if the kernel refused), which drives
/// [`crate::io::load_compact`] down its owned-read fallback. Returns
/// the previous value so tests can restore it.
#[doc(hidden)]
pub fn force_owned_fallback(on: bool) -> bool {
    FORCE_OWNED_FALLBACK.swap(on, Ordering::SeqCst)
}

/// True while fallback injection is active.
#[cfg_attr(not(unix), allow(dead_code))]
pub(crate) fn fallback_forced() -> bool {
    FORCE_OWNED_FALLBACK.load(Ordering::SeqCst)
}

#[cfg(unix)]
mod unix {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// A read-only, private, whole-file memory mapping.
    ///
    /// The usual mmap caveat applies: truncating the underlying file
    /// while it is mapped turns reads into `SIGBUS`. Graph files are
    /// written once by `nck build-graph` and then served immutably, so
    /// the loader accepts that standard trade for the O(1) open.
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is read-only (PROT_READ) and private
    // (MAP_PRIVATE); no interior mutability, so shared access across
    // threads is sound.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `file` read-only. Returns `Ok(None)` when the file is
        /// empty or the kernel refuses the mapping — callers fall back
        /// to reading the file into memory; only metadata I/O errors
        /// propagate.
        pub fn map(file: &File) -> io::Result<Option<Self>> {
            if super::fallback_forced() {
                return Ok(None);
            }
            let len = file.metadata()?.len();
            let Ok(len) = usize::try_from(len) else {
                return Ok(None);
            };
            if len == 0 {
                return Ok(None);
            }
            // SAFETY: requests a fresh read-only private mapping of a
            // valid open descriptor; the kernel picks the address. The
            // result is checked against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr.is_null() || ptr as usize == usize::MAX {
                return Ok(None);
            }
            Ok(Some(Self { ptr, len }))
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `munmap` in Drop; `&self` cannot
            // outlive the mapping.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }

        /// Size of the mapping in bytes.
        pub fn len(&self) -> usize {
            self.len
        }

        /// True when the mapping is empty (never constructed — kept for
        /// API completeness).
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: unmaps exactly the region obtained from mmap;
            // called at most once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::io::Write;

        #[test]
        fn maps_file_contents_and_unmaps() {
            let dir = std::env::temp_dir().join("nck_graph_mmap_test");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("payload.bin");
            let mut f = std::fs::File::create(&path).unwrap();
            f.write_all(b"hello mapping").unwrap();
            f.sync_all().unwrap();
            let f = std::fs::File::open(&path).unwrap();
            let m = Mmap::map(&f).unwrap().expect("regular file maps");
            assert_eq!(m.as_slice(), b"hello mapping");
            assert_eq!(m.len(), 13);
            assert!(!m.is_empty());
            drop(m);
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn empty_file_returns_none() {
            let dir = std::env::temp_dir().join("nck_graph_mmap_test");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("empty.bin");
            std::fs::File::create(&path).unwrap();
            let f = std::fs::File::open(&path).unwrap();
            assert!(Mmap::map(&f).unwrap().is_none());
            std::fs::remove_file(&path).ok();
        }
    }
}
