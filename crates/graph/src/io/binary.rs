//! File I/O for the compact binary graph format.
//!
//! The byte layout itself lives in [`crate::compact`] (one encoder, one
//! parser — the in-memory [`CompactGraph::from_graph`] constructor and
//! the file loader share both). This module is the thin file layer:
//! writing the image to disk and opening it back, preferring a read-only
//! memory map so a server's cold start is O(header + checksum) instead
//! of O(re-parse).

use crate::compact::{encode_compact, CompactGraph, GraphBytes};
use crate::error::GraphError;
use crate::graph::KnowledgeGraph;
use std::io::Write;
use std::path::Path;

/// Serializes `graph` in the compact binary format to `writer`.
pub fn write_compact<W: Write>(graph: &KnowledgeGraph, writer: &mut W) -> Result<(), GraphError> {
    writer.write_all(&encode_compact(graph))?;
    Ok(())
}

/// Saves `graph` as a compact binary file at `path`.
pub fn save_compact<P: AsRef<Path>>(graph: &KnowledgeGraph, path: P) -> Result<(), GraphError> {
    let mut file = std::fs::File::create(path)?;
    write_compact(graph, &mut file)?;
    file.sync_all()?;
    Ok(())
}

/// Parses a compact graph from an in-memory image (useful with readers
/// that are not files; files should use [`load_compact`]).
pub fn read_compact(bytes: Vec<u8>) -> Result<CompactGraph, GraphError> {
    CompactGraph::from_bytes(bytes)
}

/// Opens a compact binary graph file.
///
/// On Unix the file is memory-mapped read-only, so adjacency and name
/// pools are served by the page cache without a heap copy; elsewhere (or
/// if mapping fails) the file is read into memory in a single call.
/// Either way the image is fully validated — magic, version, checksum
/// and table consistency — before a [`CompactGraph`] is returned.
pub fn load_compact<P: AsRef<Path>>(path: P) -> Result<CompactGraph, GraphError> {
    let path = path.as_ref();
    #[cfg(unix)]
    {
        let file = std::fs::File::open(path)?;
        if let Some(mapped) = super::mmap::Mmap::map(&file)? {
            return CompactGraph::parse(GraphBytes::Mapped(mapped));
        }
    }
    CompactGraph::parse(GraphBytes::Owned(std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::GraphAccess;
    use crate::builder::GraphBuilder;

    fn sample() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add_triple("Merkel", "studied", "Physics");
        b.add_triple("Hollande", "hasChild", "Thomas");
        b.add_triple("Hollande", "hasChild", "Flora");
        let n = b.node("Hollande");
        b.set_type(n, "politician");
        b.subtype("politician", "person");
        b.build()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("nck_graph_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn file_round_trip_is_exact() {
        let g = sample();
        let path = tmp("round_trip.nckg");
        save_compact(&g, &path).unwrap();
        let c = load_compact(&path).unwrap();
        assert_eq!(GraphAccess::num_nodes(&c), g.num_nodes());
        assert_eq!(GraphAccess::num_stored_edges(&c), g.num_stored_edges());
        for v in g.nodes() {
            let want: Vec<_> = g.edges(v).collect();
            let got: Vec<_> = GraphAccess::edges(&c, v).collect();
            assert_eq!(want, got);
            assert_eq!(g.node_name(v), c.node_name(v));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[cfg(unix)]
    fn unix_load_is_memory_mapped() {
        let path = tmp("mapped.nckg");
        save_compact(&sample(), &path).unwrap();
        let c = load_compact(&path).unwrap();
        assert!(c.is_memory_mapped(), "unix load should take the mmap path");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected_loudly() {
        let g = sample();
        let path = tmp("truncated.nckg");
        save_compact(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_compact(&path).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("invalid compact graph file"),
            "unexpected: {msg}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_graph_file_is_rejected_loudly() {
        let path = tmp("not_a_graph.nckg");
        std::fs::write(
            &path,
            b"Merkel\tstudied\tPhysics\nMore lines to pad this file out\n",
        )
        .unwrap();
        let err = load_compact(&path).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_compact(tmp("does_not_exist.nckg")).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
