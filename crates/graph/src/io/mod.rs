//! Graph exchange formats.
//!
//! Two formats with different jobs:
//!
//! - [`tsv`] — the human-readable TSV triple format (one logical triple
//!   per line). Portable and diffable, but loading re-parses, re-interns
//!   and re-closes the graph under inversion: O(|E|) work per open.
//! - [`binary`] — the compact binary image described in
//!   [`crate::compact`]. `nck build-graph` compiles triples into it once;
//!   a server then opens it with [`load_compact`], which memory-maps the
//!   file where the platform supports it (falling back to a single
//!   `read`), verifies the checksum, and serves adjacency straight from
//!   the mapped bytes.
//!
//! The TSV entry points are re-exported here so pre-existing
//! `nck_graph::io::{read_tsv, ...}` paths keep working.

pub mod binary;
pub mod mmap;
pub mod tsv;

pub use binary::{load_compact, read_compact, save_compact, write_compact};
pub use tsv::{load_tsv, read_tsv, save_tsv, write_tsv, SUBTYPE_PREDICATE, TYPE_PREDICATE};
