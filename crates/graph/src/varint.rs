//! LEB128 variable-length integers and delta-encoded adjacency runs.
//!
//! The compact graph backend stores each node's label-sorted out-edge run
//! as a byte stream instead of two parallel `u32` arrays. Because runs are
//! sorted by `(label, target)` (the [`crate::access::GraphAccess`]
//! contract), consecutive values are close together and their differences
//! fit in one or two bytes most of the time:
//!
//! ```text
//! run   := group*
//! group := label count target gap*
//! ```
//!
//! where `label` is the raw label id for the first group and the
//! (positive) delta from the previous group's label after that, `count`
//! is the number of targets in the group, `target` is the group's first
//! target id raw, and each `gap` is the (non-negative) delta from the
//! previous target. All values are unsigned LEB128: seven payload bits
//! per byte, high bit set on every byte except the last.
//!
//! Decoding replays the exact `(label, target)` sequence that was
//! encoded, so an encoded CSR run iterates identically to the original —
//! the property the parity suites pin down.

/// Maximum encoded size of one `u32` (⌈32 / 7⌉ bytes).
pub const MAX_VARINT_LEN: usize = 5;

/// Appends `value` to `out` as unsigned LEB128.
#[inline]
pub fn write_u32(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 `u32` starting at `bytes[pos]`, advancing `pos`.
///
/// Returns `None` on truncated input, on an encoding longer than
/// [`MAX_VARINT_LEN`] bytes, or on payload bits overflowing 32 bits —
/// malformed streams are reported, never mis-decoded.
#[inline]
pub fn read_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        let payload = u32::from(byte & 0x7f);
        // The fifth byte may only carry the top four bits of a u32.
        if shift == 28 && payload > 0x0f {
            return None;
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift >= 32 {
            return None;
        }
    }
}

/// Delta-encodes one node's sorted `(label, target)` run onto `out`.
///
/// The run must be grouped by ascending label with ascending targets
/// within each group (exact duplicates are allowed — a zero gap encodes
/// in one byte). Panics in debug builds if the ordering contract is
/// violated.
pub fn encode_run(out: &mut Vec<u8>, run: &[(u32, u32)]) {
    let mut i = 0;
    let mut prev_label: Option<u32> = None;
    while i < run.len() {
        let label = run[i].0;
        let group_end = run[i..]
            .iter()
            .position(|&(l, _)| l != label)
            .map_or(run.len(), |off| i + off);
        match prev_label {
            None => write_u32(out, label),
            Some(prev) => {
                debug_assert!(label > prev, "labels must be strictly ascending");
                write_u32(out, label - prev);
            }
        }
        prev_label = Some(label);
        write_u32(out, (group_end - i) as u32);
        write_u32(out, run[i].1);
        for w in run[i..group_end].windows(2) {
            debug_assert!(w[1].1 >= w[0].1, "targets must be ascending in a group");
            write_u32(out, w[1].1 - w[0].1);
        }
        i = group_end;
    }
}

/// Streaming decoder over one delta-encoded run; yields the original
/// `(label, target)` pairs in encoding order.
///
/// The iterator is total over well-formed streams; a malformed stream
/// (truncation, varint overflow) ends iteration early rather than
/// panicking, and [`RunDecoder::is_exhausted`] distinguishes the two.
#[derive(Debug, Clone)]
pub struct RunDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    label: u32,
    prev_target: u32,
    remaining_in_group: u32,
    started: bool,
    malformed: bool,
}

impl<'a> RunDecoder<'a> {
    /// Decodes the run stored in `bytes` (the whole slice is one run).
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            label: 0,
            prev_target: 0,
            remaining_in_group: 0,
            started: false,
            malformed: false,
        }
    }

    /// True when every input byte has been consumed and no group is
    /// mid-decode — i.e. iteration ended cleanly, not on malformed input.
    pub fn is_exhausted(&self) -> bool {
        !self.malformed && self.pos == self.bytes.len() && self.remaining_in_group == 0
    }

    /// Advances past the remaining targets of the current group without
    /// materializing them; positions the decoder at the next group header.
    /// Returns `false` on malformed input.
    fn skip_group_rest(&mut self) -> bool {
        while self.remaining_in_group > 0 {
            if read_u32(self.bytes, &mut self.pos).is_none() {
                self.malformed = true;
                return false;
            }
            self.remaining_in_group -= 1;
        }
        true
    }

    /// Reads the next group header (label, count, first target). Returns
    /// `None` at end of input or on malformed data.
    fn next_group(&mut self) -> Option<(u32, u32)> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let header = (|| {
            let label_field = read_u32(self.bytes, &mut self.pos)?;
            let label = if self.started {
                self.label.checked_add(label_field)?
            } else {
                label_field
            };
            let count = read_u32(self.bytes, &mut self.pos)?;
            if count == 0 {
                return None; // empty groups are never encoded
            }
            let first = read_u32(self.bytes, &mut self.pos)?;
            Some((label, count, first))
        })();
        let Some((label, count, first)) = header else {
            self.malformed = true;
            return None;
        };
        self.label = label;
        self.started = true;
        self.prev_target = first;
        self.remaining_in_group = count - 1;
        Some((label, first))
    }

    /// Decodes the next distinct label, skipping target payloads of the
    /// current group. Returns `None` at end of run or on malformed input.
    pub fn next_distinct_label(&mut self) -> Option<u32> {
        if !self.skip_group_rest() {
            return None;
        }
        self.next_group().map(|(label, _)| label)
    }

    /// Iterates the distinct labels of the run, skipping target payloads.
    pub fn labels(mut self) -> impl Iterator<Item = u32> + 'a {
        std::iter::from_fn(move || self.next_distinct_label())
    }
}

impl Iterator for RunDecoder<'_> {
    type Item = (u32, u32);

    #[inline]
    fn next(&mut self) -> Option<(u32, u32)> {
        if self.remaining_in_group > 0 {
            let next = read_u32(self.bytes, &mut self.pos)
                .and_then(|gap| self.prev_target.checked_add(gap));
            let Some(target) = next else {
                self.malformed = true;
                return None;
            };
            self.prev_target = target;
            self.remaining_in_group -= 1;
            return Some((self.label, target));
        }
        self.next_group()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(run: &[(u32, u32)]) -> Vec<(u32, u32)> {
        let mut buf = Vec::new();
        encode_run(&mut buf, run);
        let decoder = RunDecoder::new(&buf);
        let out: Vec<_> = decoder.clone().collect();
        assert!(RunDecoder::new(&buf).count() == run.len());
        out
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0, 1, 127, 128, 16_383, 16_384, u32::MAX - 1, u32::MAX] {
            let mut buf = Vec::new();
            write_u32(&mut buf, v);
            assert!(buf.len() <= MAX_VARINT_LEN);
            let mut pos = 0;
            assert_eq!(read_u32(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_varint_is_none() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 300);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_u32(&buf, &mut pos), None);
        assert_eq!(read_u32(&[], &mut 0), None);
    }

    #[test]
    fn overlong_varint_is_none() {
        // Six continuation bytes exceed MAX_VARINT_LEN.
        let buf = [0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert_eq!(read_u32(&buf, &mut 0), None);
        // Five bytes whose top payload overflows 32 bits.
        let buf = [0xff, 0xff, 0xff, 0xff, 0x7f];
        assert_eq!(read_u32(&buf, &mut 0), None);
    }

    #[test]
    fn empty_run_encodes_to_nothing() {
        assert!(round_trip(&[]).is_empty());
        let mut buf = Vec::new();
        encode_run(&mut buf, &[]);
        assert!(buf.is_empty());
    }

    #[test]
    fn single_group_round_trips() {
        let run = [(3, 10), (3, 11), (3, 500)];
        assert_eq!(round_trip(&run), run);
    }

    #[test]
    fn multi_group_round_trips() {
        let run = [(0, 7), (2, 0), (2, 1), (2, 1_000_000), (9, 42)];
        assert_eq!(round_trip(&run), run);
    }

    #[test]
    fn duplicate_targets_round_trip() {
        let run = [(1, 5), (1, 5), (1, 5)];
        assert_eq!(round_trip(&run), run);
    }

    #[test]
    fn labels_iterator_yields_distinct_labels() {
        let run = [(0, 1), (0, 2), (3, 1), (7, 9), (7, 10)];
        let mut buf = Vec::new();
        encode_run(&mut buf, &run);
        let labels: Vec<u32> = RunDecoder::new(&buf).labels().collect();
        assert_eq!(labels, vec![0, 3, 7]);
    }

    #[test]
    fn truncated_run_ends_iteration_without_panicking() {
        let run = [(0, 1), (0, 2), (5, 3)];
        let mut buf = Vec::new();
        encode_run(&mut buf, &run);
        buf.truncate(buf.len() - 1);
        let mut dec = RunDecoder::new(&buf);
        let decoded: Vec<_> = dec.by_ref().collect();
        assert!(decoded.len() < run.len());
        assert!(!dec.is_exhausted());
    }

    #[test]
    fn clean_decode_is_exhausted() {
        let run = [(0, 1), (4, 2)];
        let mut buf = Vec::new();
        encode_run(&mut buf, &run);
        let mut dec = RunDecoder::new(&buf);
        let _ = dec.by_ref().count();
        assert!(dec.is_exhausted());
    }
}
