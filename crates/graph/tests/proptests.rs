//! Property-based tests for the graph substrate.

#![forbid(unsafe_code)]

use nck_graph::builder::GraphBuilder;
use nck_graph::io::{read_tsv, write_tsv};
use nck_graph::stats::GraphStatistics;
use nck_graph::varint::{encode_run, RunDecoder};
use nck_graph::{CompactGraph, GraphAccess};
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: an arbitrary sorted `(label, target)` adjacency run over the
/// full `u32` range (duplicates allowed), the exact input contract of
/// [`encode_run`].
fn sorted_run() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 0..80).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

/// Strategy: a list of (subject, predicate, object) index triples over
/// small universes, to be materialized through the builder.
fn triples() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..20, 0u8..6, 0u8..20), 1..60)
}

fn node_name(i: u8) -> String {
    format!("node{i}")
}
fn pred_name(i: u8) -> String {
    format!("pred{i}")
}

fn build(triples: &[(u8, u8, u8)]) -> nck_graph::KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for &(s, p, o) in triples {
        b.add_triple(&node_name(s), &pred_name(p), &node_name(o));
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stored_edges_are_twice_unique_logical(ts in triples()) {
        let unique: HashSet<_> = ts.iter().cloned().collect();
        let g = build(&ts);
        prop_assert_eq!(g.num_logical_edges(), unique.len());
        prop_assert_eq!(g.num_stored_edges(), 2 * unique.len());
    }

    #[test]
    fn every_edge_has_inverse(ts in triples()) {
        let g = build(&ts);
        for v in g.nodes() {
            for (l, t) in g.edges(v) {
                let inv = g.labels().inverse(l);
                prop_assert!(
                    g.neighbors_with_label(t, inv).contains(&v),
                    "edge {}-{}->{} missing inverse",
                    g.node_name(v), g.label_name(l), g.node_name(t)
                );
            }
        }
    }

    #[test]
    fn degree_equals_edge_iteration(ts in triples()) {
        let g = build(&ts);
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), g.edges(v).count());
            let by_label: usize = g
                .labels()
                .iter()
                .map(|l| g.degree_with_label(v, l))
                .sum();
            prop_assert_eq!(g.degree(v), by_label);
        }
    }

    #[test]
    fn neighbors_with_label_matches_filtered_edges(ts in triples()) {
        let g = build(&ts);
        for v in g.nodes() {
            for l in g.labels().iter() {
                let via_slice: Vec<_> = g.neighbors_with_label(v, l).to_vec();
                let via_filter: Vec<_> = g
                    .edges(v)
                    .filter(|&(el, _)| el == l)
                    .map(|(_, t)| t)
                    .collect();
                prop_assert_eq!(via_slice, via_filter);
            }
        }
    }

    #[test]
    fn label_frequencies_sum_to_one(ts in triples()) {
        let g = build(&ts);
        let sum: f64 = g.labels().iter().map(|l| g.label_frequency(l)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tsv_round_trip_preserves_structure(ts in triples()) {
        let g = build(&ts);
        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let g2 = read_tsv(&buf[..]).unwrap();
        prop_assert_eq!(g2.num_logical_edges(), g.num_logical_edges());
        prop_assert_eq!(g2.num_nodes(), g.num_nodes());
        // Same adjacency under name translation.
        for v in g.nodes() {
            let v2 = g2.node_by_name(g.node_name(v)).unwrap();
            let mut e1: Vec<(String, String)> = g
                .edges(v)
                .map(|(l, t)| (g.label_name(l).to_owned(), g.node_name(t).to_owned()))
                .collect();
            let mut e2: Vec<(String, String)> = g2
                .edges(v2)
                .map(|(l, t)| (g2.label_name(l).to_owned(), g2.node_name(t).to_owned()))
                .collect();
            e1.sort();
            e2.sort();
            prop_assert_eq!(e1, e2);
        }
    }

    #[test]
    fn statistics_are_internally_consistent(ts in triples()) {
        let g = build(&ts);
        let s = GraphStatistics::compute(&g);
        prop_assert_eq!(s.num_nodes, g.num_nodes());
        let label_total: u64 = s.label_frequencies.iter().map(|l| l.count).sum();
        prop_assert_eq!(label_total as usize, g.num_stored_edges());
        let deg_total: u64 = s.degree_histogram.iter().sum();
        prop_assert_eq!(deg_total as usize, g.num_nodes());
        prop_assert!((0.0..=1.0).contains(&s.label_gini()));
    }

    #[test]
    fn varint_run_round_trips(run in sorted_run()) {
        let mut buf = Vec::new();
        encode_run(&mut buf, &run);
        let mut dec = RunDecoder::new(&buf);
        let decoded: Vec<(u32, u32)> = dec.by_ref().collect();
        prop_assert_eq!(&decoded, &run);
        prop_assert!(dec.is_exhausted(), "clean decode must consume everything");
        // The label view agrees with the full decode.
        let mut distinct: Vec<u32> = run.iter().map(|&(l, _)| l).collect();
        distinct.dedup();
        let labels: Vec<u32> = RunDecoder::new(&buf).labels().collect();
        prop_assert_eq!(labels, distinct);
    }

    #[test]
    fn compact_graph_matches_csr_id_for_id(ts in triples()) {
        let g = build(&ts);
        let c = CompactGraph::from_graph(&g);
        prop_assert_eq!(GraphAccess::num_nodes(&c), g.num_nodes());
        prop_assert_eq!(GraphAccess::num_stored_edges(&c), g.num_stored_edges());
        for v in g.nodes() {
            prop_assert_eq!(c.node_name(v), g.node_name(v));
            prop_assert_eq!(c.node_by_name(g.node_name(v)), Some(v));
            prop_assert_eq!(GraphAccess::degree(&c, v), g.degree(v));
            let ce: Vec<_> = GraphAccess::edges(&c, v).collect();
            let ge: Vec<_> = g.edges(v).collect();
            prop_assert_eq!(ce, ge);
            let cl: Vec<_> = GraphAccess::labels_of(&c, v).collect();
            let gl: Vec<_> = g.labels_of(v).collect();
            prop_assert_eq!(cl, gl);
            for l in g.labels().iter() {
                prop_assert_eq!(
                    GraphAccess::neighbors_with_label(&c, v, l).to_vec(),
                    g.neighbors_with_label(v, l).to_vec()
                );
            }
        }
    }

    #[test]
    fn labels_of_is_sorted_distinct(ts in triples()) {
        let g = build(&ts);
        for v in g.nodes() {
            let ls: Vec<_> = g.labels_of(v).collect();
            let mut sorted = ls.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(ls, sorted);
        }
    }
}
