//! The owned-read fallback must be byte-for-byte equivalent to the
//! zero-copy path.
//!
//! `load_compact` prefers a read-only memory map on Unix and silently
//! falls back to `std::fs::read` when the kernel refuses the mapping.
//! That fallback is exactly the path a non-Unix host (or a mount where
//! mmap fails) takes in production, so it gets the same parity bar as
//! everything else: force it via the `io::mmap` failure-injection hook
//! and assert the loaded graph is identical to the mapped one, id for
//! id, edge for edge, name for name.

#![cfg(unix)]
#![forbid(unsafe_code)]

use nck_graph::io::{load_compact, mmap, save_compact};
use nck_graph::{CompactGraph, GraphAccess, GraphBuilder, KnowledgeGraph};

/// Restores the injection switch even when an assertion panics, so one
/// failure cannot contaminate other tests in the binary.
struct ForceFallback {
    previous: bool,
}

impl ForceFallback {
    fn engage() -> Self {
        Self {
            previous: mmap::force_owned_fallback(true),
        }
    }
}

impl Drop for ForceFallback {
    fn drop(&mut self) {
        mmap::force_owned_fallback(self.previous);
    }
}

fn sample() -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    b.add_triple("Merkel", "studiedIn", "Leipzig");
    b.add_triple("Merkel", "memberOf", "CDU");
    b.add_triple("Hollande", "hasChild", "Thomas");
    b.add_triple("Hollande", "hasChild", "Flora");
    b.add_triple("Sarkozy", "memberOf", "UMP");
    let n = b.node("Merkel");
    b.set_type(n, "politician");
    b.subtype("politician", "person");
    b.build()
}

fn assert_graph_parity(reference: &KnowledgeGraph, loaded: &CompactGraph) {
    assert_eq!(GraphAccess::num_nodes(loaded), reference.num_nodes());
    assert_eq!(
        GraphAccess::num_stored_edges(loaded),
        reference.num_stored_edges()
    );
    for v in reference.nodes() {
        assert_eq!(reference.node_name(v), loaded.node_name(v), "name of {v:?}");
        let want: Vec<_> = reference.edges(v).collect();
        let got: Vec<_> = GraphAccess::edges(loaded, v).collect();
        assert_eq!(want, got, "adjacency of {v:?}");
    }
}

#[test]
fn forced_fallback_loads_an_identical_graph() {
    let dir = std::env::temp_dir().join("nck_graph_mmap_fallback_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fallback_parity.nckg");

    let reference = sample();
    save_compact(&reference, &path).unwrap();

    // Control: the normal path really does map.
    let mapped = load_compact(&path).unwrap();
    assert!(
        mapped.is_memory_mapped(),
        "control load should take the zero-copy path"
    );
    assert_graph_parity(&reference, &mapped);

    // Inject the failure: same file, owned-read path.
    let fallback = {
        let _force = ForceFallback::engage();
        let fallback = load_compact(&path).unwrap();
        assert!(
            !fallback.is_memory_mapped(),
            "injected mmap failure should force the owned-read fallback"
        );
        fallback
    };
    assert_graph_parity(&reference, &fallback);

    // The two loaded views agree with each other, not just the source.
    for v in reference.nodes() {
        let a: Vec<_> = GraphAccess::edges(&mapped, v).collect();
        let b: Vec<_> = GraphAccess::edges(&fallback, v).collect();
        assert_eq!(a, b);
    }

    // The switch is restored: mapping works again.
    let again = load_compact(&path).unwrap();
    assert!(again.is_memory_mapped(), "injection must not leak");

    std::fs::remove_file(&path).ok();
}
