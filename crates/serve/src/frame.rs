//! Length-prefixed framing.
//!
//! One frame = a 4-byte big-endian `u32` payload length followed by
//! exactly that many payload bytes (UTF-8 JSON at the layer above; this
//! module is payload-agnostic). The length prefix is validated against a
//! caller-supplied maximum **before** any payload byte is read, so an
//! adversarial prefix claiming 4 GiB costs the server 4 bytes of input,
//! not an allocation.
//!
//! Reading distinguishes four outcomes ([`FrameEvent`]): a complete
//! frame, a clean end-of-stream *between* frames, an oversize prefix
//! (recoverable enough to send a typed error before closing), and an
//! idle poll tick (a read timeout that struck before the first prefix
//! byte — the server's connection loop uses it to re-check the drain
//! flag). A timeout or EOF that strikes *mid-frame* is an error: the
//! peer either stalled or disconnected with a half-sent request, and
//! the stream cannot be resynchronized.

use std::io::{self, Read, Write};

/// Length prefix size in bytes.
pub const PREFIX_LEN: usize = 4;

/// One observed read outcome.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete payload.
    Frame(Vec<u8>),
    /// The peer closed the stream cleanly between frames.
    Eof,
    /// A read timeout struck before any prefix byte arrived — no data
    /// was consumed; the caller may poll flags and retry.
    Idle,
    /// The prefix announced `.0` bytes, more than the caller's maximum.
    /// No payload byte was consumed; the stream is no longer in sync.
    TooLarge(u32),
}

/// Encodes `payload` as one frame.
///
/// Returns `None` when the payload exceeds `max_payload` (a well-behaved
/// peer never builds an unsendable frame).
pub fn encode(payload: &[u8], max_payload: usize) -> Option<Vec<u8>> {
    if payload.len() > max_payload || payload.len() > u32::MAX as usize {
        return None;
    }
    let mut out = Vec::with_capacity(PREFIX_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Some(out)
}

/// Writes `payload` as one frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8], max_payload: usize) -> io::Result<()> {
    let frame = encode(payload, max_payload).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds the {max_payload}-byte limit",
                payload.len()
            ),
        )
    })?;
    w.write_all(&frame)?;
    w.flush()
}

/// Whether an I/O error is a read-timeout tick (both kinds appear in
/// practice, platform-dependent).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Fills `buf` completely, tolerating timeout ticks.
///
/// `started` tracks whether any byte of the enclosing frame was already
/// consumed: before the first byte a timeout returns `Ok(false)` (an
/// idle poll), after it timeouts simply retry — the transfer is
/// mid-frame and the per-frame patience is bounded by `max_ticks`
/// timeout ticks, after which the peer is declared stalled.
fn read_exact_patient<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    mut started: bool,
    max_ticks: u32,
) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    let mut ticks = 0;
    while filled < buf.len() {
        // lint: allow(panic_path) — the loop condition guarantees `filled < buf.len()`
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 && !started {
                    ReadOutcome::CleanEof
                } else {
                    ReadOutcome::TruncatedEof
                })
            }
            Ok(n) => {
                filled += n;
                started = true;
            }
            Err(e) if is_timeout(&e) => {
                if !started {
                    return Ok(ReadOutcome::Idle);
                }
                ticks += 1;
                if ticks >= max_ticks {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-frame",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Complete)
}

enum ReadOutcome {
    Complete,
    CleanEof,
    TruncatedEof,
    Idle,
}

/// Reads exactly `len` payload bytes in chunks, resynchronizing the
/// stream after an oversize-but-drainable frame. Returning the bytes
/// (instead of discarding) lets the server salvage the correlation id,
/// so even an oversize frame's typed rejection matches the request the
/// peer sent.
pub fn drain_exact<R: Read>(r: &mut R, len: u64, max_ticks: u32) -> io::Result<Vec<u8>> {
    let mut drained = Vec::new();
    let mut remaining = len;
    let mut chunk = [0u8; 4096];
    while remaining > 0 {
        let want = chunk.len().min(remaining as usize);
        // lint: allow(panic_path) — `want` is clamped to `chunk.len()` one line up
        match read_exact_patient(r, &mut chunk[..want], true, max_ticks)? {
            ReadOutcome::Complete => {
                // lint: allow(panic_path) — same bound: `want <= chunk.len()`
                drained.extend_from_slice(&chunk[..want]);
                remaining -= want as u64;
            }
            ReadOutcome::CleanEof | ReadOutcome::TruncatedEof => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer disconnected mid-frame",
                ))
            }
            // lint: allow(panic_path) — `started: true` above means Idle cannot be reported
            ReadOutcome::Idle => unreachable!("started reads never report Idle"),
        }
    }
    Ok(drained)
}

/// Reads one frame.
///
/// `max_payload` bounds the accepted payload size; `max_ticks` bounds
/// how many read-timeout ticks a peer may stall mid-frame before the
/// read fails (pass a large value for streams without a read timeout).
pub fn read_frame<R: Read>(
    r: &mut R,
    max_payload: usize,
    max_ticks: u32,
) -> io::Result<FrameEvent> {
    let mut prefix = [0u8; PREFIX_LEN];
    match read_exact_patient(r, &mut prefix, false, max_ticks)? {
        ReadOutcome::Complete => {}
        ReadOutcome::CleanEof => return Ok(FrameEvent::Eof),
        ReadOutcome::Idle => return Ok(FrameEvent::Idle),
        ReadOutcome::TruncatedEof => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer disconnected mid-prefix",
            ))
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len as usize > max_payload {
        return Ok(FrameEvent::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_patient(r, &mut payload, true, max_ticks)? {
        ReadOutcome::Complete => Ok(FrameEvent::Frame(payload)),
        ReadOutcome::CleanEof | ReadOutcome::TruncatedEof => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!(
                "peer disconnected mid-frame ({} of {len} payload bytes received)",
                payload.len()
            ),
        )),
        // lint: allow(panic_path) — the payload read passes `started: true`, so Idle cannot be reported
        ReadOutcome::Idle => unreachable!("started reads never report Idle"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let payload = b"{\"id\":1}".to_vec();
        let bytes = encode(&payload, 1024).unwrap();
        assert_eq!(bytes.len(), PREFIX_LEN + payload.len());
        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor, 1024, 1).unwrap() {
            FrameEvent::Frame(got) => assert_eq!(got, payload),
            other => panic!("expected frame, got {other:?}"),
        }
        // The stream then ends cleanly.
        assert!(matches!(
            read_frame(&mut cursor, 1024, 1).unwrap(),
            FrameEvent::Eof
        ));
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let bytes = encode(&[], 16).unwrap();
        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor, 16, 1).unwrap() {
            FrameEvent::Frame(got) => assert!(got.is_empty()),
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn oversize_prefix_is_reported_without_allocation() {
        let mut bytes = u32::MAX.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"junk");
        let mut cursor = Cursor::new(bytes);
        match read_frame(&mut cursor, 1024, 1).unwrap() {
            FrameEvent::TooLarge(len) => assert_eq!(len, u32::MAX),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_errors() {
        let mut bytes = 100u32.to_be_bytes().to_vec();
        bytes.extend_from_slice(b"only ten b");
        let mut cursor = Cursor::new(bytes);
        let err = read_frame(&mut cursor, 1024, 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_prefix_errors() {
        let mut cursor = Cursor::new(vec![0u8, 0]);
        let err = read_frame(&mut cursor, 1024, 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn drain_resynchronizes_the_stream_and_returns_the_bytes() {
        let mut bytes = encode(b"skip me", 64).unwrap();
        bytes.extend_from_slice(&encode(b"keep", 64).unwrap());
        let mut cursor = Cursor::new(bytes);
        let mut prefix = [0u8; PREFIX_LEN];
        cursor.read_exact(&mut prefix).unwrap();
        let drained = drain_exact(&mut cursor, u32::from_be_bytes(prefix) as u64, 1).unwrap();
        assert_eq!(drained, b"skip me");
        match read_frame(&mut cursor, 64, 1).unwrap() {
            FrameEvent::Frame(got) => assert_eq!(got, b"keep"),
            other => panic!("expected the next frame, got {other:?}"),
        }
    }

    #[test]
    fn drain_reports_truncation() {
        let mut cursor = Cursor::new(b"short".to_vec());
        let err = drain_exact(&mut cursor, 100, 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn encode_refuses_oversize_payloads() {
        assert!(encode(&[0u8; 17], 16).is_none());
        assert!(write_frame(&mut Vec::new(), &[0u8; 17], 16).is_err());
    }
}
