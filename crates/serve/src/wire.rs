//! The request/response envelopes that ride inside frames.
//!
//! Payloads are the **existing** `nck-api` JSON vocabulary —
//! [`QueryRequest`], [`QueryResponse`], [`ErrorBody`] — wrapped in a
//! minimal envelope carrying a client-chosen correlation `id` (responses
//! may be written out of submission order once requests fan across
//! workers) and an optional per-request deadline.
//!
//! Decoding is **strict**: unknown fields anywhere in the envelope, the
//! query, or its overrides are rejected with a typed
//! [`ApiError::Protocol`] instead of being silently dropped. On a wire
//! protocol, an ignored field is a misspelled option the client believes
//! is in effect — loud rejection is the only honest behavior.

use nck_api::{json, ApiError, ErrorBody, QueryRequest, QueryResponse};
use serde::{Deserialize, Serialize, Value};

/// One request frame: a correlation id, the query, and an optional
/// deadline in milliseconds (measured from the moment the server reads
/// the frame).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// The query, in the exact `nck-api` schema.
    pub query: QueryRequest,
    /// Per-request deadline in milliseconds. Expired requests are
    /// answered with a typed `deadline_exceeded` error instead of a
    /// result — whether they aged out queued or finished too late.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
}

/// One response frame: the echoed id plus exactly one of `ok` / `err`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireResponse {
    /// The request's correlation id (0 when the request was so malformed
    /// no id could be recovered).
    pub id: u64,
    /// The successful answer.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub ok: Option<QueryResponse>,
    /// The typed error ([`ApiError::body`]).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub err: Option<ErrorBody>,
}

impl WireResponse {
    /// A success response.
    pub fn ok(id: u64, response: QueryResponse) -> Self {
        Self {
            id,
            ok: Some(response),
            err: None,
        }
    }

    /// An error response.
    pub fn err(id: u64, error: &ApiError) -> Self {
        Self {
            id,
            ok: None,
            err: Some(error.body()),
        }
    }

    /// Serializes to the JSON payload bytes of one frame.
    pub fn to_payload(&self) -> Vec<u8> {
        json::to_string(self).into_bytes()
    }
}

/// Rejects map keys outside `allowed`.
fn check_keys(value: &Value, what: &str, allowed: &[&str]) -> Result<(), ApiError> {
    let entries = value
        .expect_map(what)
        .map_err(|e| ApiError::Protocol(e.to_string()))?;
    for (key, _) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err(ApiError::Protocol(format!(
                "{what}: unknown field `{key}` (allowed: {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// Strictly decodes one request payload.
///
/// Every failure is an [`ApiError::Protocol`]: invalid UTF-8, invalid
/// JSON, a non-map envelope, unknown fields (envelope, query, or
/// overrides), or type mismatches.
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, ApiError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| ApiError::Protocol(format!("payload is not UTF-8: {e}")))?;
    let value = json::parse(text).map_err(|e| ApiError::Protocol(format!("invalid JSON: {e}")))?;
    check_keys(&value, "request", &["id", "query", "deadline_ms"])?;
    if let Some(query) = value.get("query") {
        check_keys(
            query,
            "request.query",
            &["entities", "label", "top", "overrides"],
        )?;
        if let Some(overrides) = query.get("overrides") {
            if *overrides != Value::Null {
                check_keys(
                    overrides,
                    "request.query.overrides",
                    &[
                        "context_size",
                        "walks",
                        "selector",
                        "type_filter",
                        "epsilon",
                        "threads",
                    ],
                )?;
            }
        }
    }
    WireRequest::from_value(&value).map_err(|e| ApiError::Protocol(e.to_string()))
}

/// Decodes one response payload (the client side; also strict).
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, ApiError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| ApiError::Protocol(format!("payload is not UTF-8: {e}")))?;
    let value = json::parse(text).map_err(|e| ApiError::Protocol(format!("invalid JSON: {e}")))?;
    check_keys(&value, "response", &["id", "ok", "err"])?;
    WireResponse::from_value(&value).map_err(|e| ApiError::Protocol(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64) -> WireRequest {
        WireRequest {
            id,
            query: QueryRequest::entities(["Merkel", "Obama"]),
            deadline_ms: Some(250),
        }
    }

    #[test]
    fn request_round_trips() {
        let req = request(7);
        let payload = json::to_string(&req).into_bytes();
        assert_eq!(decode_request(&payload).unwrap(), req);
    }

    #[test]
    fn unknown_envelope_field_is_a_protocol_error() {
        let payload = br#"{"id":1,"query":{"entities":["A"]},"bogus":3}"#;
        let err = decode_request(payload).unwrap_err();
        assert_eq!(err.code(), "protocol");
        assert!(err.to_string().contains("bogus"), "{err}");
    }

    #[test]
    fn unknown_query_field_is_a_protocol_error() {
        let payload = br#"{"id":1,"query":{"entities":["A"],"topk":5}}"#;
        let err = decode_request(payload).unwrap_err();
        assert_eq!(err.code(), "protocol");
        assert!(err.to_string().contains("topk"), "{err}");
    }

    #[test]
    fn unknown_override_field_is_a_protocol_error() {
        let payload = br#"{"id":1,"query":{"entities":["A"],"overrides":{"walk":9}}}"#;
        let err = decode_request(payload).unwrap_err();
        assert_eq!(err.code(), "protocol");
        assert!(err.to_string().contains("walk"), "{err}");
    }

    #[test]
    fn invalid_json_and_non_map_envelopes_are_protocol_errors() {
        assert_eq!(decode_request(b"{\"id\":").unwrap_err().code(), "protocol");
        assert_eq!(decode_request(b"[1,2,3]").unwrap_err().code(), "protocol");
        assert_eq!(
            decode_request(&[0xff, 0xfe]).unwrap_err().code(),
            "protocol"
        );
    }

    #[test]
    fn response_round_trips_ok_and_err() {
        let ok = WireResponse::ok(
            3,
            QueryResponse {
                query: "A,B".into(),
                context_size: 0,
                context: vec![],
                characteristics: vec![],
                secs: None,
            },
        );
        assert_eq!(decode_response(&ok.to_payload()).unwrap(), ok);

        let err = WireResponse::err(4, &ApiError::Overloaded("queue full".into()));
        let back = decode_response(&err.to_payload()).unwrap();
        assert_eq!(back.err.as_ref().unwrap().error, "overloaded");
        assert_eq!(back.id, 4);
    }
}
