//! A small blocking client for the framed protocol.
//!
//! One [`ServeClient`] wraps one TCP connection and speaks the
//! request/response envelope synchronously: [`call`](ServeClient::call)
//! writes a frame, reads frames until the response carrying its
//! correlation id arrives, and returns either the decoded
//! [`QueryResponse`] or the server's typed [`ErrorBody`]. Responses for
//! other ids (possible once a caller pipelines requests by hand) are
//! parked and picked up by their own waiters.

use crate::frame::{self, FrameEvent};
use crate::wire::{self, WireRequest, WireResponse};
use nck_api::{ErrorBody, QueryRequest, QueryResponse};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed *without* a server answer. A server-side
/// rejection (overload shed, deadline miss, protocol complaint, query
/// fault) is the `Api` variant, carrying the typed [`ErrorBody`].
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with a typed error.
    Api(ErrorBody),
    /// The connection failed or closed before an answer arrived.
    Io(io::Error),
    /// The server's bytes did not decode as a response.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Api(body) => write!(f, "server error [{}]: {}", body.error, body.message),
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "undecodable response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Default client-side cap on response payloads (16 MiB).
pub const CLIENT_MAX_FRAME: usize = 16 << 20;

/// One blocking connection to an `nck serve` instance.
pub struct ServeClient {
    stream: TcpStream,
    next_id: u64,
    max_frame: usize,
    /// Responses read while waiting for a different id.
    parked: HashMap<u64, WireResponse>,
}

impl ServeClient {
    /// Connects to the server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            next_id: 1,
            max_frame: CLIENT_MAX_FRAME,
            parked: HashMap::new(),
        })
    }

    /// Sends one query and blocks for its answer.
    pub fn call(&mut self, query: &QueryRequest) -> Result<QueryResponse, ClientError> {
        self.call_with_deadline(query, None)
    }

    /// Sends one query carrying a server-side deadline and blocks for
    /// its answer (which may be a typed `deadline_exceeded` error).
    pub fn call_with_deadline(
        &mut self,
        query: &QueryRequest,
        deadline_ms: Option<u64>,
    ) -> Result<QueryResponse, ClientError> {
        let id = self.send_with_deadline(query, deadline_ms)?;
        self.recv(id)
    }

    /// Writes one request frame without waiting; returns its correlation
    /// id for a later [`recv`](Self::recv). Pipelining: several sends
    /// may be outstanding at once.
    pub fn send(&mut self, query: &QueryRequest) -> Result<u64, ClientError> {
        self.send_with_deadline(query, None)
    }

    /// [`send`](Self::send) with a server-side deadline.
    pub fn send_with_deadline(
        &mut self,
        query: &QueryRequest,
        deadline_ms: Option<u64>,
    ) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = WireRequest {
            id,
            query: query.clone(),
            deadline_ms,
        };
        let payload = nck_api::json::to_string(&request).into_bytes();
        frame::write_frame(&mut self.stream, &payload, self.max_frame)?;
        Ok(id)
    }

    /// Blocks for the response to correlation id `id`.
    pub fn recv(&mut self, id: u64) -> Result<QueryResponse, ClientError> {
        let response = loop {
            if let Some(found) = self.parked.remove(&id) {
                break found;
            }
            let response = self.read_response()?;
            if response.id == id {
                break response;
            }
            // An uncorrelated error (id 0) means the server could not
            // recover which request went wrong — or rejected the
            // connection itself. Deliver it to the current waiter
            // instead of parking it forever.
            if response.id == 0 && response.err.is_some() {
                break response;
            }
            self.parked.insert(response.id, response);
        };
        match (response.ok, response.err) {
            (Some(ok), None) => Ok(ok),
            (None, Some(err)) => Err(ClientError::Api(err)),
            (ok, err) => Err(ClientError::Protocol(format!(
                "response must carry exactly one of ok/err (ok: {}, err: {})",
                ok.is_some(),
                err.is_some()
            ))),
        }
    }

    fn read_response(&mut self) -> Result<WireResponse, ClientError> {
        // The stream has no read timeout: Idle cannot occur, and a large
        // tick budget keeps slow (but live) servers inside patience.
        match frame::read_frame(&mut self.stream, self.max_frame, u32::MAX)? {
            FrameEvent::Frame(payload) => {
                wire::decode_response(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            FrameEvent::Eof => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            FrameEvent::Idle => unreachable!("no read timeout is set"),
            FrameEvent::TooLarge(len) => Err(ClientError::Protocol(format!(
                "server response of {len} bytes exceeds the client's {}-byte limit",
                self.max_frame
            ))),
        }
    }

    /// Half-closes the write side, signalling a clean end-of-stream to
    /// the server while responses may still be read.
    pub fn finish_writes(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}
