//! The accept loop, admission control, worker pool, and drain logic.
//!
//! ```text
//!                    ┌────────────── Server ──────────────┐
//!  TCP connect ──►  accept thread ──► reader thread (per conn)
//!                        │                  │ decode + admit
//!                        │                  ▼
//!                        │          Bounded admission queue ──► worker pool
//!                        │            │ full → overloaded          │
//!                        │            │ draining → overloaded      │ deadline check
//!                        │                                         ▼
//!                        │                              NckService::query
//!                        │                                         │
//!  response frame ◄──────┴───────────── per-connection writer ◄────┘
//! ```
//!
//! Life of a request: the reader decodes its frame (malformed input is
//! answered with a typed `protocol` error, or the connection is closed
//! when the stream cannot be resynchronized), then *admits* it into the
//! bounded queue — at capacity the request is shed immediately with a
//! typed `overloaded` error rather than queued into unbounded latency.
//! A worker later pops it, first re-checking the deadline (requests can
//! age out while queued) and re-checking it again after execution: an
//! answer the client's deadline already expired on is reported as
//! `deadline_exceeded`, not as a stale success.
//!
//! Shutdown is a drain, not an abort: [`ServerHandle::shutdown`] stops
//! the accept loop, closes admission (late arrivals are shed as
//! overloaded), lets the workers finish every already-admitted request,
//! waits for the responses to flush, and only then closes the sockets —
//! zero admitted requests are ever dropped.

use crate::frame::{self, FrameEvent};
use crate::queue::{Bounded, PushError};
use crate::wire::{self, WireResponse};
use nck_api::{ApiError, NckService, QueryRequest};
use serde::Serialize;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing admitted requests.
    pub workers: usize,
    /// Bounded admission-queue depth; requests beyond it are shed with
    /// a typed `overloaded` error instead of queued into unbounded
    /// latency.
    pub queue_depth: usize,
    /// Maximum simultaneously open client connections; beyond it a new
    /// connection receives one `overloaded` error frame and is closed.
    pub max_connections: usize,
    /// Maximum accepted request-frame payload, in bytes. Oversize
    /// prefixes are rejected with a typed `protocol` error before any
    /// payload byte is read.
    pub max_frame_bytes: usize,
    /// Deadline applied to requests that carry none (`None` = no
    /// default; such requests never age out).
    pub default_deadline_ms: Option<u64>,
    /// Fault injection for load tests: each admitted request sleeps
    /// this long before executing, simulating a slow handler so
    /// saturation/shedding behavior can be driven deterministically.
    /// 0 (the default) disables it.
    pub handler_delay_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            max_connections: 256,
            max_frame_bytes: 1 << 20,
            default_deadline_ms: None,
            handler_delay_ms: 0,
        }
    }
}

/// A monotonic counter snapshot of the server's behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ServeMetrics {
    /// Connections accepted into service.
    pub connections_accepted: u64,
    /// Connections turned away at the connection limit.
    pub connections_rejected: u64,
    /// Malformed inputs observed (oversize prefixes, undecodable
    /// payloads, truncated frames, mid-frame disconnects).
    pub frames_malformed: u64,
    /// Requests admitted into the queue.
    pub requests_admitted: u64,
    /// Requests shed (queue full, or arriving during drain).
    pub requests_shed: u64,
    /// Requests answered `deadline_exceeded` (aged out queued, or
    /// finished past their deadline).
    pub deadline_misses: u64,
    /// Successful responses written.
    pub responses_ok: u64,
    /// Error responses written (all codes, including sheds).
    pub responses_err: u64,
}

#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    frames_malformed: AtomicU64,
    requests_admitted: AtomicU64,
    requests_shed: AtomicU64,
    deadline_misses: AtomicU64,
    responses_ok: AtomicU64,
    responses_err: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServeMetrics {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServeMetrics {
            connections_accepted: get(&self.connections_accepted),
            connections_rejected: get(&self.connections_rejected),
            frames_malformed: get(&self.frames_malformed),
            requests_admitted: get(&self.requests_admitted),
            requests_shed: get(&self.requests_shed),
            deadline_misses: get(&self.deadline_misses),
            responses_ok: get(&self.responses_ok),
            responses_err: get(&self.responses_err),
        }
    }
}

/// One client connection's write half, shared between the reader (for
/// immediate protocol/shed errors) and the workers (for answers).
/// Writes are serialized by the mutex; frames from different workers
/// interleave whole, never byte-wise.
struct Connection {
    writer: Mutex<TcpStream>,
    /// Admitted requests whose response has not been written yet. The
    /// reader keeps the connection open until this drains.
    pending: AtomicUsize,
}

/// One admitted request.
struct Job {
    conn: Arc<Connection>,
    id: u64,
    query: QueryRequest,
    /// Absolute deadline (request's own, or the configured default).
    deadline: Option<Instant>,
    deadline_ms: Option<u64>,
    received: Instant,
}

struct Shared {
    service: Arc<NckService>,
    config: ServeConfig,
    queue: Bounded<Job>,
    counters: Counters,
    draining: AtomicBool,
    open_connections: AtomicUsize,
    in_flight: AtomicUsize,
}

/// Read-timeout tick used by connection readers to poll the drain flag.
const POLL: Duration = Duration::from_millis(25);
/// Mid-frame stall patience, in `POLL` ticks (≈ 5 s).
const STALL_TICKS: u32 = 200;

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Writes one response frame; counts it. Write failures mean the
    /// client is gone — the response is dropped on the floor by design.
    fn respond(&self, conn: &Connection, response: WireResponse) {
        let is_err = response.err.is_some();
        let payload = response.to_payload();
        // Poison recovery: a worker that panicked mid-write at worst
        // left a torn frame on *this* connection's stream (the client
        // sees a protocol error and reconnects); propagating the
        // poison would instead panic every worker that still owes this
        // connection a response.
        let mut writer = conn
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Responses are server-built and trusted; they are not subject
        // to the request-frame limit.
        if frame::write_frame(&mut *writer, &payload, u32::MAX as usize).is_ok() {
            if is_err {
                self.counters.responses_err.fetch_add(1, Ordering::Relaxed);
            } else {
                self.counters.responses_ok.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Executes one admitted job (worker context).
    fn process(&self, job: Job) {
        let deadline_err =
            |received: Instant, deadline_ms: Option<u64>| ApiError::DeadlineExceeded {
                deadline_ms: deadline_ms.unwrap_or(0),
                elapsed_ms: received.elapsed().as_millis() as u64,
            };
        let expired = |deadline: Option<Instant>| deadline.is_some_and(|d| Instant::now() > d);

        let response = if expired(job.deadline) {
            // Aged out in the queue; never executed.
            self.counters
                .deadline_misses
                .fetch_add(1, Ordering::Relaxed);
            WireResponse::err(job.id, &deadline_err(job.received, job.deadline_ms))
        } else {
            if self.config.handler_delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(self.config.handler_delay_ms));
            }
            match self.service.query(&job.query) {
                _ if expired(job.deadline) => {
                    // Finished, but past the deadline: the client has
                    // already given up on this answer.
                    self.counters
                        .deadline_misses
                        .fetch_add(1, Ordering::Relaxed);
                    WireResponse::err(job.id, &deadline_err(job.received, job.deadline_ms))
                }
                Ok(ok) => WireResponse::ok(job.id, ok),
                Err(e) => WireResponse::err(job.id, &e),
            }
        };
        self.respond(&job.conn, response);
        job.conn.pending.fetch_sub(1, Ordering::AcqRel);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Admission: counts the request in-flight, then tries the bounded
    /// queue; a full (or closing) queue sheds with a typed error.
    fn admit(
        &self,
        conn: &Arc<Connection>,
        id: u64,
        query: QueryRequest,
        deadline_ms: Option<u64>,
    ) {
        let deadline_ms = deadline_ms.or(self.config.default_deadline_ms);
        let received = Instant::now();
        let job = Job {
            conn: Arc::clone(conn),
            id,
            query,
            deadline: deadline_ms.map(|ms| received + Duration::from_millis(ms)),
            deadline_ms,
            received,
        };
        conn.pending.fetch_add(1, Ordering::AcqRel);
        self.in_flight.fetch_add(1, Ordering::AcqRel);
        let shed_reason = match self.queue.try_push(job) {
            Ok(()) => {
                self.counters
                    .requests_admitted
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(PushError::Full(_)) => {
                format!("admission queue full (depth {})", self.queue.capacity())
            }
            Err(PushError::Closed(_)) => "server draining".to_owned(),
        };
        conn.pending.fetch_sub(1, Ordering::AcqRel);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.counters.requests_shed.fetch_add(1, Ordering::Relaxed);
        self.respond(
            conn,
            WireResponse::err(id, &ApiError::Overloaded(shed_reason)),
        );
    }
}

/// Best-effort recovery of the correlation id from a payload that failed
/// strict decoding, so even a rejected request's error can be matched to
/// the request the client sent.
fn salvage_id(payload: &[u8]) -> u64 {
    std::str::from_utf8(payload)
        .ok()
        .and_then(|text| nck_api::json::parse(text).ok())
        .and_then(|value| value.get("id").and_then(|id| u64::from_value(id).ok()))
        .unwrap_or(0)
}

use serde::Deserialize as _; // for `u64::from_value` in `salvage_id`

/// One connection's read loop.
fn handle_connection(shared: Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let conn = match stream.try_clone() {
        Ok(writer) => Arc::new(Connection {
            writer: Mutex::new(writer),
            pending: AtomicUsize::new(0),
        }),
        Err(_) => {
            shared.open_connections.fetch_sub(1, Ordering::AcqRel);
            return;
        }
    };
    let mut reader = stream;
    let _ = reader.set_read_timeout(Some(POLL));
    let max = shared.config.max_frame_bytes;
    loop {
        if shared.draining() {
            break;
        }
        match frame::read_frame(&mut reader, max, STALL_TICKS) {
            Ok(FrameEvent::Idle) => continue,
            Ok(FrameEvent::Eof) => break,
            Ok(FrameEvent::TooLarge(len)) => {
                shared
                    .counters
                    .frames_malformed
                    .fetch_add(1, Ordering::Relaxed);
                let error = ApiError::Protocol(format!(
                    "frame of {len} bytes exceeds the {max}-byte limit"
                ));
                // A modest overshoot is drained so the stream stays in
                // sync: the peer finishes its write, reads a typed error
                // correlated to the id it sent, and the connection
                // survives. (Closing while the peer is still writing
                // would turn the buffered error into a connection
                // reset.) A frame claiming more than the drain budget
                // gets an uncorrelated error and a close.
                if (len as u64) <= 16 * max as u64 {
                    if let Ok(drained) = frame::drain_exact(&mut reader, len as u64, STALL_TICKS) {
                        shared.respond(&conn, WireResponse::err(salvage_id(&drained), &error));
                        continue;
                    }
                }
                shared.respond(&conn, WireResponse::err(0, &error));
                break;
            }
            Ok(FrameEvent::Frame(payload)) => match wire::decode_request(&payload) {
                Ok(request) => shared.admit(&conn, request.id, request.query, request.deadline_ms),
                Err(e) => {
                    // Framing stayed intact, so the connection survives
                    // a malformed payload: reject it loudly, keep
                    // reading.
                    shared
                        .counters
                        .frames_malformed
                        .fetch_add(1, Ordering::Relaxed);
                    shared.respond(&conn, WireResponse::err(salvage_id(&payload), &e));
                }
            },
            Err(_) => {
                // Truncated frame, mid-request disconnect, or a peer
                // stalled past patience: nothing can be answered
                // reliably — close, counting the anomaly.
                shared
                    .counters
                    .frames_malformed
                    .fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
    }
    // Keep the socket open until every admitted request has been
    // answered (bounded wait; the workers own the actual writes).
    let mut waited = Duration::ZERO;
    while conn.pending.load(Ordering::Acquire) > 0 && waited < Duration::from_secs(30) {
        std::thread::sleep(Duration::from_millis(1));
        waited += Duration::from_millis(1);
    }
    shared.open_connections.fetch_sub(1, Ordering::AcqRel);
}

/// The accept loop.
fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    for incoming in listener.incoming() {
        if shared.draining() {
            break;
        }
        let stream = match incoming {
            Ok(s) => s,
            Err(_) => continue,
        };
        let open = shared.open_connections.load(Ordering::Acquire);
        if open >= shared.config.max_connections {
            // Turn the connection away with one typed error frame.
            shared
                .counters
                .connections_rejected
                .fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let body = WireResponse::err(
                0,
                &ApiError::Overloaded(format!(
                    "connection limit reached ({} open)",
                    shared.config.max_connections
                )),
            )
            .to_payload();
            let _ = frame::write_frame(&mut stream, &body, u32::MAX as usize);
            continue;
        }
        shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        shared.open_connections.fetch_add(1, Ordering::AcqRel);
        let shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("nck-serve-conn".into())
            .spawn(move || handle_connection(shared, stream));
    }
}

/// A running server. Dropping the handle without calling
/// [`shutdown`](Self::shutdown) begins a drain but does not wait for it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time counter snapshot.
    pub fn metrics(&self) -> ServeMetrics {
        self.shared.counters.snapshot()
    }

    /// Requests admitted but not yet answered.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
        // Stop admission; the backlog is still handed to the workers.
        self.shared.queue.close();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }

    /// Graceful drain: stop accepting, shed new requests, finish every
    /// admitted one, flush the responses, close the sockets. Returns the
    /// final metrics.
    pub fn shutdown(mut self) -> ServeMetrics {
        self.begin_drain();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers joined ⇒ every admitted response is written; readers
        // observe the drain flag within one poll tick and hang up.
        let mut waited = Duration::ZERO;
        while self.shared.open_connections.load(Ordering::Acquire) > 0
            && waited < Duration::from_secs(30)
        {
            std::thread::sleep(Duration::from_millis(2));
            waited += Duration::from_millis(2);
        }
        debug_assert_eq!(self.shared.in_flight.load(Ordering::Acquire), 0);
        self.shared.counters.snapshot()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.shared.draining() {
            self.begin_drain();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
/// serving `service` under `config`. Returns once the listener is live;
/// serving continues on background threads until
/// [`ServerHandle::shutdown`].
pub fn serve(
    service: Arc<NckService>,
    addr: impl ToSocketAddrs,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        service,
        queue: Bounded::new(config.queue_depth),
        config,
        counters: Counters::default(),
        draining: AtomicBool::new(false),
        open_connections: AtomicUsize::new(0),
        in_flight: AtomicUsize::new(0),
    });
    let workers = (0..shared.config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("nck-serve-worker-{i}"))
                .spawn(move || {
                    while let Some(job) = shared.queue.pop() {
                        shared.process(job);
                    }
                })
        })
        .collect::<io::Result<Vec<_>>>()?;
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("nck-serve-accept".into())
            .spawn(move || accept_loop(shared, listener))?
    };
    Ok(ServerHandle {
        shared,
        addr,
        accept: Some(accept),
        workers,
    })
}
