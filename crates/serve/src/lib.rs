//! # nck-serve — the socket front door
//!
//! The paper frames FindNC as an *interactive* service; this crate puts
//! the existing [`nck_api::NckService`] façade behind a real socket
//! without inventing a second vocabulary: frames carry the same
//! [`QueryRequest`](nck_api::QueryRequest) /
//! [`QueryResponse`](nck_api::QueryResponse) /
//! [`ErrorBody`](nck_api::ErrorBody) JSON the in-process API speaks, so
//! a served answer is id-for-id the in-process answer.
//!
//! Layers, bottom up:
//!
//! - [`frame`] — length-prefixed framing (4-byte big-endian length +
//!   payload), with the size limit enforced on the prefix *before* any
//!   payload byte is read;
//! - [`wire`] — the request/response envelopes (correlation id,
//!   optional per-request deadline) with **strict** decoding: unknown
//!   fields are a typed `protocol` error, not silently dropped;
//! - [`queue`] — the bounded admission queue whose `Full` result is the
//!   server's load-shedding point;
//! - [`server`] — accept loop, per-connection readers, worker pool,
//!   per-request deadlines (checked both at dequeue and after
//!   execution), connection limits, and graceful drain (stop accepting,
//!   finish every admitted request, flush, close);
//! - [`client`] — a small blocking client used by the CLI example, the
//!   socket test suites and the load generator.
//!
//! Everything is `std`-only: no async runtime, no registry dependencies
//! — threads, sockets and condvars.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod queue;
pub mod server;
pub mod wire;

pub use client::{ClientError, ServeClient, CLIENT_MAX_FRAME};
pub use server::{serve, ServeConfig, ServeMetrics, ServerHandle};
pub use wire::{WireRequest, WireResponse};
