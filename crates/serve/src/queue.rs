//! A bounded MPMC admission queue (mutex + condvar, std only).
//!
//! The queue is the server's load-shedding point: producers (connection
//! readers) use the non-blocking [`Bounded::try_push`] and turn a
//! `Full` result into a typed `overloaded` response, while consumers
//! (workers) block in [`Bounded::pop`]. [`Bounded::close`] starts the
//! drain: already-queued items are still handed out — a closed queue
//! only stops *admitting* — and `pop` returns `None` once the backlog
//! is empty, which is each worker's signal to exit.
//!
//! # Poison recovery
//!
//! Every lock acquisition recovers from poisoning with
//! [`PoisonError::into_inner`] instead of panicking. A worker that
//! panics while *holding* the queue mutex can only do so at points
//! where the `State` is already consistent (a `VecDeque` push/pop
//! either happened or did not — there is no half-updated state), so
//! the poison flag carries no information here. Propagating it would
//! turn one crashed worker into a wedged admission queue: every other
//! producer and consumer would panic on their next acquisition and the
//! server would stop answering. Recovering keeps the drain invariants
//! (close → hand out backlog → release consumers) intact.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back for shedding.
    Full(T),
    /// The queue is closed (server draining); the item is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    available: Condvar,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            available: Condvar::new(),
        }
    }

    /// The capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current backlog length.
    pub fn len(&self) -> usize {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.items.len()
    }

    /// Whether the backlog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: `Err(Full)` at capacity, `Err(Closed)`
    /// once draining.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained, returning `None` in the latter case.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops admission and wakes every blocked consumer. Queued items
    /// are still popped — close never drops work.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_without_blocking() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_backlog_then_releases_consumers() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)), "no new admission");
        assert_eq!(q.pop(), Some(1), "backlog still handed out");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "then consumers are released");
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q = Arc::new(Bounded::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn poisoned_lock_does_not_wedge_the_queue() {
        let q = Arc::new(Bounded::new(2));
        let poisoner = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let _guard = q.state.lock().unwrap();
                panic!("worker crashed while holding the queue lock");
            })
        };
        assert!(poisoner.join().is_err(), "the poisoner must have panicked");
        // Every operation still works: admission, backlog, drain.
        q.try_push(7).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(7));
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(9).unwrap();
        assert_eq!(q.try_push(10), Err(PushError::Full(10)));
    }
}
