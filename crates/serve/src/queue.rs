//! A bounded MPMC admission queue (mutex + condvar, std only).
//!
//! The queue is the server's load-shedding point: producers (connection
//! readers) use the non-blocking [`Bounded::try_push`] and turn a
//! `Full` result into a typed `overloaded` response, while consumers
//! (workers) block in [`Bounded::pop`]. [`Bounded::close`] starts the
//! drain: already-queued items are still handed out — a closed queue
//! only stops *admitting* — and `pop` returns `None` once the backlog
//! is empty, which is each worker's signal to exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back for shedding.
    Full(T),
    /// The queue is closed (server draining); the item is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    available: Condvar,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            available: Condvar::new(),
        }
    }

    /// The capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current backlog length.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the backlog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: `Err(Full)` at capacity, `Err(Closed)`
    /// once draining.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained, returning `None` in the latter case.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Stops admission and wakes every blocked consumer. Queued items
    /// are still popped — close never drops work.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_without_blocking() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_backlog_then_releases_consumers() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)), "no new admission");
        assert_eq!(q.pop(), Some(1), "backlog still handed out");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "then consumers are released");
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q = Arc::new(Bounded::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(9).unwrap();
        assert_eq!(q.try_push(10), Err(PushError::Full(10)));
    }
}
