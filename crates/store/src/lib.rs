//! # nck-store — triple-store substrate
//!
//! The paper's experimental setup loads YAGO and LinkedMDB into an Apache
//! Jena triple store *"to perform quick traversals on the graph without
//! loading it into main memory"*. This crate reproduces the access paths
//! that workload needs, in Rust:
//!
//! - [`dictionary`] — term dictionary mapping IRIs/literals ↔ dense ids;
//! - [`triple`] — dictionary-encoded triples and match patterns;
//! - [`index`] — the three orderings (SPO, POS, OSP) every bound/unbound
//!   pattern combination can be answered from with a range scan;
//! - [`store`] — the [`TripleStore`] facade: insert, remove, pattern
//!   queries, bulk load;
//! - [`ntriples`] — an N-Triples-subset parser and writer;
//! - [`store_graph`] — [`StoreGraph`], a [`nck_graph::GraphAccess`]
//!   backend answering the algorithm crates' surface directly from the
//!   indexes with a lazy per-predicate cache (no materialization);
//! - [`graph_view`] — adapter materializing a [`nck_graph::KnowledgeGraph`]
//!   from the store (the optional fast path when memory allows).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dictionary;
pub mod error;
pub mod graph_view;
pub mod index;
pub mod ntriples;
pub mod store;
pub mod store_graph;
pub mod triple;

pub use dictionary::{Term, TermDictionary, TermId};
pub use error::StoreError;
pub use store::TripleStore;
pub use store_graph::StoreGraph;
pub use triple::{Triple, TriplePattern};
