//! N-Triples-subset parser and writer.
//!
//! Supports the slice of the N-Triples grammar the datasets need:
//!
//! ```text
//! <subject-iri> <predicate-iri> <object-iri> .
//! <subject-iri> <predicate-iri> "object literal" .
//! ```
//!
//! with `#` comments, blank lines, and `\"`, `\\`, `\n`, `\t` escapes in
//! literals. Blank nodes and datatype/language tags are not needed by the
//! pipeline and are rejected with a precise error.

use crate::dictionary::Term;
use crate::error::StoreError;
use crate::store::TripleStore;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Parses N-Triples from a reader into a fresh store.
pub fn read_ntriples<R: Read>(reader: R) -> Result<TripleStore, StoreError> {
    let mut store = TripleStore::new();
    load_ntriples(reader, &mut store)?;
    Ok(store)
}

/// Parses N-Triples from a reader into an existing store.
pub fn load_ntriples<R: Read>(reader: R, store: &mut TripleStore) -> Result<usize, StoreError> {
    let mut r = BufReader::new(reader);
    let mut buf = String::new();
    let mut line_no = 0usize;
    let mut added = 0usize;
    loop {
        buf.clear();
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (s, p, o) = parse_line(line).map_err(|message| StoreError::Parse {
            line: line_no,
            message,
        })?;
        if store.insert(&s, &p, &o) {
            added += 1;
        }
    }
    Ok(added)
}

/// Writes the store as N-Triples.
pub fn write_ntriples<W: Write>(store: &TripleStore, writer: W) -> Result<(), StoreError> {
    let mut w = BufWriter::new(writer);
    for t in store.iter() {
        let st = store.decode(t);
        write_term(&mut w, st.s)?;
        w.write_all(b" ")?;
        write_term(&mut w, st.p)?;
        w.write_all(b" ")?;
        write_term(&mut w, st.o)?;
        w.write_all(b" .\n")?;
    }
    w.flush()?;
    Ok(())
}

fn write_term<W: Write>(w: &mut W, term: &Term) -> Result<(), StoreError> {
    match term {
        Term::Iri(s) => write!(w, "<{s}>")?,
        Term::Literal(s) => {
            w.write_all(b"\"")?;
            for ch in s.chars() {
                match ch {
                    '"' => w.write_all(b"\\\"")?,
                    '\\' => w.write_all(b"\\\\")?,
                    '\n' => w.write_all(b"\\n")?,
                    '\t' => w.write_all(b"\\t")?,
                    '\r' => w.write_all(b"\\r")?,
                    c => write!(w, "{c}")?,
                }
            }
            w.write_all(b"\"")?;
        }
    }
    Ok(())
}

/// Parses one statement line (without trailing newline).
fn parse_line(line: &str) -> Result<(Term, Term, Term), String> {
    let mut rest = line;
    let s = parse_term(&mut rest)?;
    if s.is_literal() {
        return Err("subject must be an IRI".into());
    }
    let p = parse_term(&mut rest)?;
    if p.is_literal() {
        return Err("predicate must be an IRI".into());
    }
    let o = parse_term(&mut rest)?;
    let rest = rest.trim_start();
    match rest.strip_prefix('.') {
        Some(tail) if tail.trim().is_empty() => Ok((s, p, o)),
        _ => Err("expected terminating '.'".into()),
    }
}

/// Parses the next term from `*rest`, advancing it past the term.
fn parse_term(rest: &mut &str) -> Result<Term, String> {
    let trimmed = rest.trim_start();
    if let Some(tail) = trimmed.strip_prefix('<') {
        let end = tail.find('>').ok_or("unterminated IRI (missing '>')")?;
        let iri = &tail[..end];
        if iri.is_empty() {
            return Err("empty IRI".into());
        }
        *rest = &tail[end + 1..];
        return Ok(Term::iri(iri));
    }
    if let Some(tail) = trimmed.strip_prefix('"') {
        let mut value = String::new();
        let mut chars = tail.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '"')) => value.push('"'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, 't')) => value.push('\t'),
                    Some((_, 'r')) => value.push('\r'),
                    Some((_, other)) => return Err(format!("unknown escape \\{other}")),
                    None => return Err("dangling escape at end of literal".into()),
                },
                '"' => {
                    let after = &tail[i + 1..];
                    if after.trim_start().starts_with('^') || after.trim_start().starts_with('@') {
                        return Err("datatype/language tags are not supported".into());
                    }
                    *rest = after;
                    return Ok(Term::literal(value));
                }
                c => value.push(c),
            }
        }
        return Err("unterminated literal (missing '\"')".into());
    }
    if trimmed.starts_with("_:") {
        return Err("blank nodes are not supported".into());
    }
    Err(format!(
        "expected '<iri>' or '\"literal\"', found: {:?}",
        trimmed.chars().take(20).collect::<String>()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_iri_triples() {
        let input = b"<Merkel> <studied> <Physics> .\n<Putin> <studied> <Law> .\n";
        let s = read_ntriples(&input[..]).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(
            &Term::iri("Merkel"),
            &Term::iri("studied"),
            &Term::iri("Physics")
        ));
    }

    #[test]
    fn parses_literals_with_escapes() {
        let input = br#"<Merkel> <quote> "wir \"schaffen\" das\n" ."#;
        let s = read_ntriples(&input[..]).unwrap();
        let obj: Vec<_> = s
            .query_decoded(Some(&Term::iri("Merkel")), None, None)
            .map(|st| st.o.clone())
            .collect();
        assert_eq!(obj, vec![Term::literal("wir \"schaffen\" das\n")]);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let input = b"# comment\n\n<a> <b> <c> .\n";
        assert_eq!(read_ntriples(&input[..]).unwrap().len(), 1);
    }

    #[test]
    fn round_trip() {
        let mut store = TripleStore::new();
        store.insert_iris("a", "p", "b");
        store.insert(
            &Term::iri("a"),
            &Term::iri("says"),
            &Term::literal("tab\there \"quoted\" \\slash"),
        );
        let mut buf = Vec::new();
        write_ntriples(&store, &mut buf).unwrap();
        let back = read_ntriples(&buf[..]).unwrap();
        assert_eq!(back.len(), store.len());
        assert!(back.contains(
            &Term::iri("a"),
            &Term::iri("says"),
            &Term::literal("tab\there \"quoted\" \\slash"),
        ));
    }

    #[test]
    fn error_positions_are_reported() {
        let input = b"<a> <b> <c> .\n<broken\n";
        match read_ntriples(&input[..]) {
            Err(StoreError::Parse { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("unterminated IRI"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_unsupported_constructs() {
        for (input, needle) in [
            (&b"_:b0 <p> <o> .\n"[..], "blank nodes"),
            (&b"<s> <p> \"v\"@en .\n"[..], "tags"),
            (&b"<s> <p> \"v\"^^<int> .\n"[..], "tags"),
            (&b"\"lit\" <p> <o> .\n"[..], "subject"),
            (&b"<s> \"lit\" <o> .\n"[..], "predicate"),
            (&b"<s> <p> <o>\n"[..], "terminating"),
            (&b"<s> <p> <o> . trailing\n"[..], "terminating"),
            (&b"<> <p> <o> .\n"[..], "empty IRI"),
        ] {
            match read_ntriples(input) {
                Err(StoreError::Parse { message, .. }) => {
                    assert!(
                        message.contains(needle),
                        "expected {needle:?} in {message:?}"
                    );
                }
                other => panic!("expected parse error for {input:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn duplicate_lines_counted_once() {
        let input = b"<a> <b> <c> .\n<a> <b> <c> .\n";
        let mut store = TripleStore::new();
        let added = load_ntriples(&input[..], &mut store).unwrap();
        assert_eq!(added, 1);
        assert_eq!(store.len(), 1);
    }
}
