//! [`StoreGraph`] — a [`GraphAccess`] backend answering directly from the
//! SPO/POS/OSP triple indexes.
//!
//! The paper runs its traversals against an Apache Jena store *"without
//! loading the graph into main memory"*. [`graph_view::to_knowledge_graph`]
//! (the original hand-off) materializes a full CSR copy of the store;
//! `StoreGraph` instead implements the backend-generic
//! [`GraphAccess`] surface over the store itself:
//!
//! - **Construction** makes one pass over the triples to build the *small*
//!   graph-level state: the node dictionary (terms collapsed by lexical
//!   form, exactly as the materializing adapter does), node types, the
//!   taxonomy, the edge-label registry with Def.-1 inverses, and per-label
//!   edge counts. No adjacency is materialized here.
//! - **Per-label queries** ([`GraphAccess::neighbors_with_label`],
//!   [`GraphAccess::degree_with_label`]) are served from a lazy
//!   *per-predicate cache*: the first touch of a label runs one POS range
//!   scan and caches that label's sorted adjacency run; later touches are
//!   array lookups. A FindNC run against a fixed context therefore builds
//!   runs only for the labels incident to `Q ∪ C`.
//! - **Node-level queries** ([`GraphAccess::labels_of`]) are answered
//!   directly by SPO/OSP prefix scans — no cache involved.
//! - **Whole-graph traversals** ([`GraphAccess::edges`],
//!   [`GraphAccess::degree`], [`GraphAccess::edge_at`] — the access paths
//!   of PathMining walks and PageRank) fault in all per-label runs on
//!   first use; the cache is then equivalent to a label-sharded CSR and
//!   each step costs one pass over the (small, fixed) label set rather
//!   than the CSR backend's O(1) — the price of never materializing a
//!   merged adjacency.
//!
//! Node, label and type ids are assigned in the same store-iteration
//! order as [`graph_view::to_knowledge_graph`], so the two backends are
//! id-for-id interchangeable on the same store — the workspace's parity
//! tests exploit this to compare full pipeline runs exactly.
//!
//! [`graph_view::to_knowledge_graph`]: crate::graph_view::to_knowledge_graph

use crate::dictionary::{Term, TermId};
use crate::graph_view::{SUBTYPE_PREDICATE, TYPE_PREDICATE};
use crate::store::TripleStore;
use crate::triple::TriplePattern;
use nck_graph::interner::Interner;
use nck_graph::schema::EdgeLabelRegistry;
use nck_graph::{EdgeLabelId, GraphAccess, NodeId, NodeTypeId, Taxonomy};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// How a predicate term contributes edges to one label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Triples `(s, p, o)` contribute `(s → o)`.
    Forward,
    /// Triples `(s, p, o)` contribute the Def.-1 mirror `(o → s)`.
    Mirror,
}

/// One label's adjacency, CSR-shaped: `offsets[v]..offsets[v+1]` indexes
/// the sorted targets of node `v` under this label.
#[derive(Debug)]
struct LabelRun {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl LabelRun {
    fn targets_of(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// A triple-store-backed [`GraphAccess`] implementation. See the
/// [module docs](self).
#[derive(Debug)]
pub struct StoreGraph {
    store: Arc<TripleStore>,
    names: Interner,
    /// Up to two dictionary terms (IRI / literal) collapsing onto a node.
    node_terms: Vec<Vec<TermId>>,
    /// Dictionary term → node (integer lookup for run building).
    term_node: HashMap<TermId, NodeId>,
    types: Vec<Option<NodeTypeId>>,
    labels: EdgeLabelRegistry,
    taxonomy: Taxonomy,
    /// Predicate term → forward label id.
    pred_label: HashMap<TermId, EdgeLabelId>,
    /// Per-label `(predicate term, direction)` contributions.
    contribs: Vec<Vec<(TermId, Direction)>>,
    label_counts: Vec<u64>,
    num_stored: usize,
    num_logical: usize,
    /// The lazy per-predicate adjacency cache.
    runs: Vec<OnceLock<LabelRun>>,
    /// Set once every run is built (whole-graph traversal mode).
    all_runs_built: OnceLock<()>,
    /// Lazy per-node total degree (faulted in with the full run set).
    degrees: OnceLock<Vec<u32>>,
}

impl StoreGraph {
    /// Builds the graph-level state from one pass over `store`.
    ///
    /// Takes the store by value or shared handle (`TripleStore` or
    /// `Arc<TripleStore>`): the graph co-owns it, so a service can hold a
    /// `StoreGraph` without keeping a separate borrow alive. Callers that
    /// also need the store afterwards pass `Arc::clone(&store)`.
    ///
    /// `(s, rdf:type, o)` sets node `s`'s type, `(s, rdfs:subClassOf, o)`
    /// adds a taxonomy axiom, and every other statement becomes a logical
    /// edge with an automatic inverse — the same interpretation as
    /// [`crate::graph_view::to_knowledge_graph`].
    pub fn new(store: impl Into<Arc<TripleStore>>) -> Self {
        let store: Arc<TripleStore> = store.into();
        let mut names = Interner::new();
        let mut node_terms: Vec<Vec<TermId>> = Vec::new();
        let mut term_node: HashMap<TermId, NodeId> = HashMap::new();
        let mut types: Vec<Option<NodeTypeId>> = Vec::new();
        let mut labels = EdgeLabelRegistry::new();
        let mut taxonomy = Taxonomy::new();
        let mut pred_label: HashMap<TermId, EdgeLabelId> = HashMap::new();
        let mut contribs: Vec<Vec<(TermId, Direction)>> = Vec::new();
        // Logical edges after lexical collapsing, for builder-exact counts.
        let mut logical: HashSet<(NodeId, EdgeLabelId, NodeId)> = HashSet::new();
        let mut logical_order: Vec<(NodeId, EdgeLabelId, NodeId)> = Vec::new();

        let node = |names: &mut Interner,
                    node_terms: &mut Vec<Vec<TermId>>,
                    term_node: &mut HashMap<TermId, NodeId>,
                    types: &mut Vec<Option<NodeTypeId>>,
                    term: &Term,
                    id: TermId|
         -> NodeId {
            let raw = names.intern(term.lexical());
            if raw as usize >= types.len() {
                types.push(None);
                node_terms.push(Vec::new());
            }
            let slot = &mut node_terms[raw as usize];
            if !slot.contains(&id) {
                slot.push(id);
            }
            let n = NodeId::new(raw);
            term_node.insert(id, n);
            n
        };

        for t in store.iter() {
            let st = store.decode(t);
            match st.p {
                Term::Iri(p) if p == TYPE_PREDICATE => {
                    let n = node(
                        &mut names,
                        &mut node_terms,
                        &mut term_node,
                        &mut types,
                        st.s,
                        t.s,
                    );
                    let ty = taxonomy.register(st.o.lexical());
                    types[n.index()] = Some(ty);
                }
                Term::Iri(p) if p == SUBTYPE_PREDICATE => {
                    let sub = taxonomy.register(st.s.lexical());
                    let sup = taxonomy.register(st.o.lexical());
                    taxonomy.add_subtype(sub, sup);
                }
                _ => {
                    let s = node(
                        &mut names,
                        &mut node_terms,
                        &mut term_node,
                        &mut types,
                        st.s,
                        t.s,
                    );
                    let l = labels.register(st.p.lexical());
                    let o = node(
                        &mut names,
                        &mut node_terms,
                        &mut term_node,
                        &mut types,
                        st.o,
                        t.o,
                    );
                    while contribs.len() < labels.len() {
                        contribs.push(Vec::new());
                    }
                    if let std::collections::hash_map::Entry::Vacant(e) = pred_label.entry(t.p) {
                        e.insert(l);
                        contribs[l.index()].push((t.p, Direction::Forward));
                        contribs[labels.inverse(l).index()].push((t.p, Direction::Mirror));
                    }
                    if logical.insert((s, l, o)) {
                        logical_order.push((s, l, o));
                    }
                }
            }
        }

        // Stored edges = the shared Def.-1 closure — the same code path
        // GraphBuilder::build uses, so the two backends cannot drift.
        // This transiently allocates the closed edge list to count it
        // (O(|E|) peak, dropped immediately); only the counts are
        // retained, and no adjacency survives construction.
        let (stored, label_counts) =
            nck_graph::builder::close_under_inversion(&labels, &logical_order);
        let num_stored = stored.len();
        let num_logical = logical.len();
        drop(stored);
        drop(logical);

        let runs = (0..labels.len()).map(|_| OnceLock::new()).collect();
        Self {
            store,
            names,
            node_terms,
            term_node,
            types,
            labels,
            taxonomy,
            pred_label,
            contribs,
            label_counts,
            num_stored,
            num_logical,
            runs,
            all_runs_built: OnceLock::new(),
            degrees: OnceLock::new(),
        }
    }

    /// Number of logical (user-inserted) edges after lexical collapsing.
    pub fn num_logical_edges(&self) -> usize {
        self.num_logical
    }

    /// The underlying store.
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// A shared handle to the underlying store.
    pub fn store_arc(&self) -> Arc<TripleStore> {
        Arc::clone(&self.store)
    }

    /// Number of per-label runs currently cached (for tests/metrics).
    pub fn cached_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.get().is_some()).count()
    }

    fn node_of_term(&self, id: TermId) -> NodeId {
        *self
            .term_node
            .get(&id)
            .expect("edge term was interned during construction")
    }

    /// The lazily built adjacency run of `label` (one POS scan per
    /// contributing predicate on first touch).
    fn run(&self, label: EdgeLabelId) -> &LabelRun {
        self.runs[label.index()].get_or_init(|| {
            let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
            for &(p, dir) in &self.contribs[label.index()] {
                for t in self.store.scan(&TriplePattern::with_p(p)) {
                    let s = self.node_of_term(t.s);
                    let o = self.node_of_term(t.o);
                    pairs.push(match dir {
                        Direction::Forward => (s, o),
                        Direction::Mirror => (o, s),
                    });
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            let n = self.names.len();
            let mut offsets = Vec::with_capacity(n + 1);
            let mut targets = Vec::with_capacity(pairs.len());
            let mut cursor = 0usize;
            for v in 0..n {
                offsets.push(u32::try_from(targets.len()).expect("label run exceeds u32"));
                while cursor < pairs.len() && pairs[cursor].0.index() == v {
                    targets.push(pairs[cursor].1);
                    cursor += 1;
                }
            }
            offsets.push(u32::try_from(targets.len()).expect("label run exceeds u32"));
            debug_assert_eq!(
                targets.len() as u64,
                self.label_counts[label.index()],
                "run size must match the construction-time count"
            );
            LabelRun { offsets, targets }
        })
    }

    /// Faults in every per-label run (whole-graph traversal mode); a
    /// one-shot flag keeps the repeat cost at a single atomic load.
    fn ensure_all_runs(&self) {
        self.all_runs_built.get_or_init(|| {
            for l in self.labels.iter() {
                self.run(l);
            }
        });
    }

    fn degree_table(&self) -> &[u32] {
        self.degrees.get_or_init(|| {
            self.ensure_all_runs();
            let n = self.names.len();
            let mut deg = vec![0u32; n];
            for l in self.labels.iter() {
                let run = self.run(l);
                for v in 0..n {
                    deg[v] += run.offsets[v + 1] - run.offsets[v];
                }
            }
            deg
        })
    }
}

/// Iterator over a node's stored out-edges, ascending by `(label, target)`
/// (see [`GraphAccess::edges`]).
pub struct StoreEdges<'a> {
    runs: &'a [OnceLock<LabelRun>],
    node: NodeId,
    label: usize,
    pos: usize,
}

impl Iterator for StoreEdges<'_> {
    type Item = (EdgeLabelId, NodeId);

    fn next(&mut self) -> Option<(EdgeLabelId, NodeId)> {
        while self.label < self.runs.len() {
            let run = self.runs[self.label]
                .get()
                .expect("all runs are built before iteration");
            let targets = run.targets_of(self.node);
            if self.pos < targets.len() {
                let t = targets[self.pos];
                self.pos += 1;
                return Some((EdgeLabelId::from_index(self.label), t));
            }
            self.label += 1;
            self.pos = 0;
        }
        None
    }
}

impl GraphAccess for StoreGraph {
    type Edges<'a>
        = StoreEdges<'a>
    where
        Self: 'a;
    type Labels<'a>
        = std::vec::IntoIter<EdgeLabelId>
    where
        Self: 'a;

    fn num_nodes(&self) -> usize {
        self.names.len()
    }

    fn num_stored_edges(&self) -> usize {
        self.num_stored
    }

    fn node_name(&self, node: NodeId) -> &str {
        self.names.resolve(node.raw())
    }

    fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).map(NodeId::new)
    }

    fn node_type(&self, node: NodeId) -> Option<NodeTypeId> {
        self.types[node.index()]
    }

    fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    fn degree(&self, node: NodeId) -> usize {
        self.degree_table()[node.index()] as usize
    }

    fn edges(&self, node: NodeId) -> StoreEdges<'_> {
        self.ensure_all_runs();
        StoreEdges {
            runs: &self.runs,
            node,
            label: 0,
            pos: 0,
        }
    }

    fn edge_at(&self, node: NodeId, i: usize) -> (EdgeLabelId, NodeId) {
        self.ensure_all_runs();
        let mut remaining = i;
        for l in self.labels.iter() {
            let targets = self.run(l).targets_of(node);
            if remaining < targets.len() {
                return (l, targets[remaining]);
            }
            remaining -= targets.len();
        }
        panic!(
            "edge index {i} out of range for node {node} (degree {})",
            self.degree(node)
        );
    }

    fn neighbors_with_label(&self, node: NodeId, label: EdgeLabelId) -> Cow<'_, [NodeId]> {
        Cow::Borrowed(self.run(label).targets_of(node))
    }

    fn labels_of(&self, node: NodeId) -> std::vec::IntoIter<EdgeLabelId> {
        // Answered by SPO / OSP prefix scans — no run cache involved.
        let mut out: Vec<EdgeLabelId> = Vec::new();
        for &term in &self.node_terms[node.index()] {
            for t in self.store.scan(&TriplePattern::with_s(term)) {
                if let Some(&l) = self.pred_label.get(&t.p) {
                    out.push(l);
                }
            }
            for t in self.store.scan(&TriplePattern::with_o(term)) {
                if let Some(&l) = self.pred_label.get(&t.p) {
                    out.push(self.labels.inverse(l));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out.into_iter()
    }

    fn labels(&self) -> &EdgeLabelRegistry {
        &self.labels
    }

    fn label_count(&self, label: EdgeLabelId) -> u64 {
        self.label_counts[label.index()]
    }

    fn warm_predicate(&self, label: EdgeLabelId) {
        // Fault the label's adjacency into the shared per-predicate run
        // cache now, so concurrent batch queries find it resident instead
        // of each paying the first-touch POS scan.
        self.run(label);
    }

    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        // The co-owned store dominates: three index orderings over
        // 12-byte dictionary-encoded triples, roughly doubled for B-tree
        // node overhead. The graph layer adds dictionaries, the contrib
        // tables, and whatever per-label runs have been faulted in —
        // which is why a cold StoreGraph reports far less than a warm one.
        let store = self.store.len() * 3 * 2 * 12;
        let node_terms = self.node_terms.capacity() * size_of::<Vec<TermId>>()
            + self
                .node_terms
                .iter()
                .map(|v| v.capacity() * size_of::<TermId>())
                .sum::<usize>();
        let term_node = self.term_node.capacity() * (size_of::<TermId>() + size_of::<NodeId>() + 8);
        let pred_label =
            self.pred_label.capacity() * (size_of::<TermId>() + size_of::<EdgeLabelId>() + 8);
        let contribs = self.contribs.capacity() * size_of::<Vec<(TermId, Direction)>>()
            + self
                .contribs
                .iter()
                .map(|v| v.capacity() * size_of::<(TermId, Direction)>())
                .sum::<usize>();
        let runs: usize = self
            .runs
            .iter()
            .filter_map(|r| r.get())
            .map(|run| run.offsets.capacity() * 4 + run.targets.capacity() * 4)
            .sum();
        let degrees = self.degrees.get().map_or(0, |d| d.capacity() * 4);
        store
            + self.names.approx_bytes()
            + node_terms
            + term_node
            + self.types.capacity() * size_of::<Option<NodeTypeId>>()
            + self.labels.approx_bytes()
            + self.taxonomy.approx_bytes()
            + pred_label
            + contribs
            + self.label_counts.capacity() * 8
            + runs
            + degrees
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_view::to_knowledge_graph;
    use nck_graph::KnowledgeGraph;

    fn sample_store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert_iris("Merkel", "rdf:type", "politician");
        s.insert_iris("Obama", "rdf:type", "politician");
        s.insert_iris("politician", "rdfs:subClassOf", "person");
        s.insert_iris("Merkel", "studied", "Physics");
        s.insert_iris("Putin", "studied", "Law");
        s.insert_iris("Obama", "hasChild", "Malia");
        s.insert_iris("Obama", "hasChild", "Sasha");
        s.insert(
            &Term::iri("Merkel"),
            &Term::iri("birthDate"),
            &Term::literal("1954-07-17"),
        );
        s
    }

    /// Both backends must agree on every trait observation, id for id.
    fn assert_backends_agree(sg: &StoreGraph, kg: &KnowledgeGraph) {
        assert_eq!(GraphAccess::num_nodes(sg), GraphAccess::num_nodes(kg));
        assert_eq!(
            GraphAccess::num_stored_edges(sg),
            GraphAccess::num_stored_edges(kg)
        );
        assert_eq!(sg.num_logical_edges(), kg.num_logical_edges());
        assert_eq!(sg.labels().len(), kg.labels().len());
        for l in sg.labels().iter() {
            assert_eq!(sg.labels().name(l), kg.labels().name(l));
            assert_eq!(sg.labels().inverse(l), kg.labels().inverse(l));
            assert_eq!(
                GraphAccess::label_count(sg, l),
                GraphAccess::label_count(kg, l),
                "label {}",
                sg.labels().name(l)
            );
        }
        for v in GraphAccess::nodes(sg) {
            assert_eq!(GraphAccess::node_name(sg, v), GraphAccess::node_name(kg, v));
            assert_eq!(
                GraphAccess::node_type(sg, v).map(|t| sg.taxonomy().name(t).to_owned()),
                GraphAccess::node_type(kg, v).map(|t| kg.taxonomy().name(t).to_owned())
            );
            assert_eq!(GraphAccess::degree(sg, v), GraphAccess::degree(kg, v));
            let se: Vec<_> = GraphAccess::edges(sg, v).collect();
            let ke: Vec<_> = GraphAccess::edges(kg, v).collect();
            assert_eq!(se, ke, "edges of {}", GraphAccess::node_name(sg, v));
            for i in 0..se.len() {
                assert_eq!(GraphAccess::edge_at(sg, v, i), se[i]);
            }
            let sl: Vec<_> = GraphAccess::labels_of(sg, v).collect();
            let kl: Vec<_> = GraphAccess::labels_of(kg, v).collect();
            assert_eq!(sl, kl, "labels of {}", GraphAccess::node_name(sg, v));
            for l in sg.labels().iter() {
                assert_eq!(
                    GraphAccess::neighbors_with_label(sg, v, l).as_ref(),
                    GraphAccess::neighbors_with_label(kg, v, l).as_ref()
                );
            }
        }
    }

    #[test]
    fn matches_materialized_graph_id_for_id() {
        let store = sample_store();
        let kg = to_knowledge_graph(&store);
        let sg = StoreGraph::new(store);
        assert_backends_agree(&sg, &kg);
    }

    #[test]
    fn symmetric_labels_close_like_the_builder() {
        let mut store = TripleStore::new();
        store.insert_iris("x", "knows", "y");
        store.insert_iris("y", "knows", "x");
        store.insert_iris("a", "knows", "b");
        let kg = to_knowledge_graph(&store);
        let sg = StoreGraph::new(store);
        assert_backends_agree(&sg, &kg);
    }

    #[test]
    fn lexical_collapse_of_iri_and_literal_objects() {
        let mut store = TripleStore::new();
        store.insert(&Term::iri("a"), &Term::iri("p"), &Term::iri("v"));
        store.insert(&Term::iri("a"), &Term::iri("p"), &Term::literal("v"));
        store.insert(&Term::iri("b"), &Term::iri("p"), &Term::literal("v"));
        let kg = to_knowledge_graph(&store);
        let sg = StoreGraph::new(store);
        // The two "v" terms collapse onto one node; a→v is one edge.
        assert_eq!(sg.num_logical_edges(), 2);
        assert_backends_agree(&sg, &kg);
    }

    #[test]
    fn per_label_queries_only_build_touched_runs() {
        let store = sample_store();
        let sg = StoreGraph::new(store);
        assert_eq!(sg.cached_runs(), 0);
        let merkel = GraphAccess::require_node(&sg, "Merkel").unwrap();
        let studied = sg.labels().get("studied").unwrap();
        let physics = GraphAccess::node_by_name(&sg, "Physics").unwrap();
        assert_eq!(
            GraphAccess::neighbors_with_label(&sg, merkel, studied).as_ref(),
            &[physics]
        );
        assert_eq!(sg.cached_runs(), 1, "only the touched label is cached");
        // labels_of goes straight to the indexes, not the cache.
        let names: Vec<&str> = GraphAccess::labels_of(&sg, merkel)
            .map(|l| sg.labels().name(l))
            .collect();
        assert_eq!(names, vec!["studied", "birthDate"]);
        assert_eq!(sg.cached_runs(), 1);
        // A whole-graph access faults everything in.
        let _ = GraphAccess::degree(&sg, merkel);
        assert_eq!(sg.cached_runs(), sg.labels().len());
    }

    #[test]
    fn inverse_navigation_from_value_nodes() {
        let store = sample_store();
        let sg = StoreGraph::new(store);
        let date = GraphAccess::require_node(&sg, "1954-07-17").unwrap();
        let birth = sg.labels().get("birthDate").unwrap();
        let inv = sg.labels().inverse(birth);
        let owners = GraphAccess::neighbors_with_label(&sg, date, inv);
        assert_eq!(owners.len(), 1);
        assert_eq!(GraphAccess::node_name(&sg, owners[0]), "Merkel");
        // labels_of on the value node sees only the inverse direction.
        let ls: Vec<_> = GraphAccess::labels_of(&sg, date).collect();
        assert_eq!(ls, vec![inv]);
    }

    #[test]
    fn types_and_taxonomy_answered_without_materialization() {
        let store = sample_store();
        let sg = StoreGraph::new(store);
        let merkel = GraphAccess::require_node(&sg, "Merkel").unwrap();
        let ty = GraphAccess::node_type(&sg, merkel).unwrap();
        assert_eq!(sg.taxonomy().name(ty), "politician");
        let person = sg.taxonomy().get("person").unwrap();
        assert!(GraphAccess::node_has_type(&sg, merkel, person));
        assert_eq!(sg.cached_runs(), 0);
    }

    #[test]
    fn empty_store_is_an_empty_graph() {
        let store = TripleStore::new();
        let sg = StoreGraph::new(store);
        assert_eq!(GraphAccess::num_nodes(&sg), 0);
        assert_eq!(GraphAccess::num_stored_edges(&sg), 0);
        assert_eq!(sg.num_logical_edges(), 0);
    }
}
