//! Error type for the triple store.

use std::fmt;

/// Errors surfaced by the triple-store substrate.
#[derive(Debug)]
pub enum StoreError {
    /// A term id was not found in the dictionary.
    UnknownTermId(u32),
    /// A line of an N-Triples file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownTermId(id) => write!(f, "unknown term id {id}"),
            StoreError::Parse { line, message } => {
                write!(f, "N-Triples parse error at line {line}: {message}")
            }
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::UnknownTermId(3).to_string().contains('3'));
        let e = StoreError::Parse {
            line: 9,
            message: "missing dot".into(),
        };
        assert!(e.to_string().contains("line 9"));
    }
}
