//! Dictionary-encoded triples and match patterns.

use crate::dictionary::TermId;
use serde::{Deserialize, Serialize};

/// A dictionary-encoded `(subject, predicate, object)` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Triple {
    /// Subject term.
    pub s: TermId,
    /// Predicate term.
    pub p: TermId,
    /// Object term.
    pub o: TermId,
}

impl Triple {
    /// Constructs a triple.
    pub const fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Self { s, p, o }
    }
}

/// A triple pattern: each position is either bound to a term or a wildcard.
///
/// The eight bound/unbound combinations map onto the three index orderings
/// (SPO / POS / OSP) so that the bound positions always form a prefix of
/// some ordering — every pattern is a contiguous range scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TriplePattern {
    /// Subject constraint.
    pub s: Option<TermId>,
    /// Predicate constraint.
    pub p: Option<TermId>,
    /// Object constraint.
    pub o: Option<TermId>,
}

impl TriplePattern {
    /// Matches every triple.
    pub const ANY: TriplePattern = TriplePattern {
        s: None,
        p: None,
        o: None,
    };

    /// Pattern with the given constraints.
    pub const fn new(s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Self {
        Self { s, p, o }
    }

    /// `(s, ?, ?)`
    pub const fn with_s(s: TermId) -> Self {
        Self::new(Some(s), None, None)
    }

    /// `(?, p, ?)`
    pub const fn with_p(p: TermId) -> Self {
        Self::new(None, Some(p), None)
    }

    /// `(?, ?, o)`
    pub const fn with_o(o: TermId) -> Self {
        Self::new(None, None, Some(o))
    }

    /// `(s, p, ?)`
    pub const fn with_sp(s: TermId, p: TermId) -> Self {
        Self::new(Some(s), Some(p), None)
    }

    /// `(?, p, o)`
    pub const fn with_po(p: TermId, o: TermId) -> Self {
        Self::new(None, Some(p), Some(o))
    }

    /// `(s, ?, o)`
    pub const fn with_so(s: TermId, o: TermId) -> Self {
        Self::new(Some(s), None, Some(o))
    }

    /// Fully bound pattern (an existence check).
    pub const fn exact(t: Triple) -> Self {
        Self::new(Some(t.s), Some(t.p), Some(t.o))
    }

    /// Whether `t` satisfies this pattern.
    pub fn matches(&self, t: &Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }

    /// Number of bound positions (0–3).
    pub fn bound_count(&self) -> usize {
        usize::from(self.s.is_some())
            + usize::from(self.p.is_some())
            + usize::from(self.o.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(TermId(s), TermId(p), TermId(o))
    }

    #[test]
    fn any_matches_everything() {
        assert!(TriplePattern::ANY.matches(&t(1, 2, 3)));
        assert_eq!(TriplePattern::ANY.bound_count(), 0);
    }

    #[test]
    fn single_position_patterns() {
        let triple = t(1, 2, 3);
        assert!(TriplePattern::with_s(TermId(1)).matches(&triple));
        assert!(!TriplePattern::with_s(TermId(9)).matches(&triple));
        assert!(TriplePattern::with_p(TermId(2)).matches(&triple));
        assert!(TriplePattern::with_o(TermId(3)).matches(&triple));
    }

    #[test]
    fn compound_patterns() {
        let triple = t(1, 2, 3);
        assert!(TriplePattern::with_sp(TermId(1), TermId(2)).matches(&triple));
        assert!(TriplePattern::with_po(TermId(2), TermId(3)).matches(&triple));
        assert!(TriplePattern::with_so(TermId(1), TermId(3)).matches(&triple));
        assert!(!TriplePattern::with_so(TermId(1), TermId(9)).matches(&triple));
        let exact = TriplePattern::exact(triple);
        assert!(exact.matches(&triple));
        assert_eq!(exact.bound_count(), 3);
        assert!(!exact.matches(&t(1, 2, 4)));
    }

    #[test]
    fn triples_order_lexicographically() {
        assert!(t(0, 5, 5) < t(1, 0, 0));
        assert!(t(1, 0, 5) < t(1, 1, 0));
    }
}
