//! Term dictionary: IRIs and literals ↔ dense `u32` ids.
//!
//! Dictionary encoding is the standard triple-store trick (Jena TDB, RDF-3X,
//! HDT all do it): triples become fixed-width id tuples, indexes compare
//! integers instead of strings, and each distinct term is stored once.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a dictionary term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a slice index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An RDF-style term: an IRI (entity / predicate) or a literal value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A named resource, e.g. `yago:Angela_Merkel`.
    Iri(String),
    /// A literal value, e.g. `"1954-07-17"`.
    Literal(String),
}

impl Term {
    /// Convenience constructor for IRIs.
    pub fn iri(s: impl Into<String>) -> Self {
        Term::Iri(s.into())
    }

    /// Convenience constructor for literals.
    pub fn literal(s: impl Into<String>) -> Self {
        Term::Literal(s.into())
    }

    /// The lexical form, without the IRI/literal distinction.
    pub fn lexical(&self) -> &str {
        match self {
            Term::Iri(s) | Term::Literal(s) => s,
        }
    }

    /// True for [`Term::Literal`].
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Literal(s) => write!(f, "{s:?}"),
        }
    }
}

/// Two-way dictionary of [`Term`]s.
#[derive(Debug, Clone, Default)]
pub struct TermDictionary {
    terms: Vec<Term>,
    index: HashMap<Term, TermId>,
}

impl TermDictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term, returning its id (existing or fresh).
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term dictionary exhausted u32"));
        self.terms.push(term.clone());
        self.index.insert(term.clone(), id);
        id
    }

    /// The id of `term`, if interned.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.index.get(term).copied()
    }

    /// The term behind `id`, if valid.
    pub fn resolve(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term is interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(id, term)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_distinguishes_iri_from_literal() {
        let mut d = TermDictionary::new();
        let a = d.intern(&Term::iri("Physics"));
        let b = d.intern(&Term::literal("Physics"));
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn round_trip() {
        let mut d = TermDictionary::new();
        let t = Term::iri("yago:Angela_Merkel");
        let id = d.intern(&t);
        assert_eq!(d.resolve(id), Some(&t));
        assert_eq!(d.get(&t), Some(id));
        assert_eq!(d.intern(&t), id);
        assert_eq!(d.resolve(TermId(99)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("x").to_string(), "<x>");
        assert_eq!(Term::literal("v").to_string(), "\"v\"");
        assert_eq!(TermId(4).to_string(), "#4");
    }

    #[test]
    fn lexical_strips_kind() {
        assert_eq!(Term::iri("a").lexical(), "a");
        assert_eq!(Term::literal("a").lexical(), "a");
        assert!(Term::literal("a").is_literal());
        assert!(!Term::iri("a").is_literal());
    }

    #[test]
    fn iter_in_id_order() {
        let mut d = TermDictionary::new();
        d.intern(&Term::iri("a"));
        d.intern(&Term::iri("b"));
        let ids: Vec<u32> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
