//! Adapter: triple store → [`nck_graph::KnowledgeGraph`].
//!
//! The paper's pipeline keeps the dataset in a triple store and traverses
//! it as a labeled graph. This module is that hand-off: IRIs become nodes,
//! predicates become edge labels (with automatic inverses per Def. 1),
//! literals become attribute-value nodes, and the reserved predicates
//! `rdf:type` / `rdfs:subClassOf` populate node types and the taxonomy.

use crate::dictionary::Term;
use crate::store::TripleStore;
use nck_graph::{GraphBuilder, KnowledgeGraph};

/// Reserved predicate mapping a subject to its node type.
pub const TYPE_PREDICATE: &str = "rdf:type";
/// Reserved predicate declaring a subtype axiom.
pub const SUBTYPE_PREDICATE: &str = "rdfs:subClassOf";

/// Materializes a [`KnowledgeGraph`] from every statement in the store.
///
/// - `(s, rdf:type, o)` sets node `s`'s type to `o`;
/// - `(s, rdfs:subClassOf, o)` adds the taxonomy axiom `s ⊑ o`;
/// - any other `(s, p, o)` becomes a logical edge, with a literal `o`
///   interned under its lexical form.
pub fn to_knowledge_graph(store: &TripleStore) -> KnowledgeGraph {
    let mut builder = GraphBuilder::with_capacity(store.num_terms(), store.len());
    for t in store.iter() {
        let st = store.decode(t);
        match st.p {
            Term::Iri(p) if p == TYPE_PREDICATE => {
                let node = builder.node(st.s.lexical());
                builder.set_type(node, st.o.lexical());
            }
            Term::Iri(p) if p == SUBTYPE_PREDICATE => {
                builder.subtype(st.s.lexical(), st.o.lexical());
            }
            _ => {
                builder.add_triple(st.s.lexical(), st.p.lexical(), st.o.lexical());
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Term;

    fn sample_store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert_iris("Merkel", "rdf:type", "politician");
        s.insert_iris("Obama", "rdf:type", "politician");
        s.insert_iris("politician", "rdfs:subClassOf", "person");
        s.insert_iris("Merkel", "studied", "Physics");
        s.insert_iris("Obama", "hasChild", "Malia");
        s.insert(
            &Term::iri("Merkel"),
            &Term::iri("birthDate"),
            &Term::literal("1954-07-17"),
        );
        s
    }

    #[test]
    fn statements_become_edges() {
        let g = to_knowledge_graph(&sample_store());
        let merkel = g.require_node("Merkel").unwrap();
        let studied = g.labels().get("studied").unwrap();
        let targets = g.neighbors_with_label(merkel, studied);
        assert_eq!(targets.len(), 1);
        assert_eq!(g.node_name(targets[0]), "Physics");
        // 4 logical edges: studied, hasChild, birthDate — plus nothing for
        // the reserved predicates.
        assert_eq!(g.num_logical_edges(), 3);
    }

    #[test]
    fn types_and_taxonomy_populated() {
        let g = to_knowledge_graph(&sample_store());
        let merkel = g.require_node("Merkel").unwrap();
        let ty = g.node_type(merkel).unwrap();
        assert_eq!(g.taxonomy().name(ty), "politician");
        let person = g.taxonomy().get("person").unwrap();
        assert!(g.taxonomy().is_subtype(ty, person));
    }

    #[test]
    fn literals_become_value_nodes() {
        let g = to_knowledge_graph(&sample_store());
        let date = g.require_node("1954-07-17").unwrap();
        let birth = g.labels().get("birthDate").unwrap();
        let inv = g.labels().inverse(birth);
        let owners = g.neighbors_with_label(date, inv);
        assert_eq!(owners.len(), 1);
        assert_eq!(g.node_name(owners[0]), "Merkel");
    }

    #[test]
    fn reserved_predicates_do_not_become_labels() {
        let g = to_knowledge_graph(&sample_store());
        assert!(g.labels().get(TYPE_PREDICATE).is_none());
        assert!(g.labels().get(SUBTYPE_PREDICATE).is_none());
    }

    #[test]
    fn empty_store_builds_empty_graph() {
        let g = to_knowledge_graph(&TripleStore::new());
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_logical_edges(), 0);
    }
}
