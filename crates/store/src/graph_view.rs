//! Adapter: triple store → [`nck_graph::KnowledgeGraph`].
//!
//! The paper's pipeline keeps the dataset in a triple store and traverses
//! it as a labeled graph. This module is that hand-off: IRIs become nodes,
//! predicates become edge labels (with automatic inverses per Def. 1),
//! literals become attribute-value nodes, and the reserved predicates
//! `rdf:type` / `rdfs:subClassOf` populate node types and the taxonomy.

use crate::dictionary::Term;
use crate::store::TripleStore;
use nck_graph::{GraphBuilder, KnowledgeGraph};

/// Reserved predicate mapping a subject to its node type.
pub const TYPE_PREDICATE: &str = "rdf:type";
/// Reserved predicate declaring a subtype axiom.
pub const SUBTYPE_PREDICATE: &str = "rdfs:subClassOf";

/// Materializes a [`KnowledgeGraph`] from every statement in the store.
///
/// - `(s, rdf:type, o)` sets node `s`'s type to `o`;
/// - `(s, rdfs:subClassOf, o)` adds the taxonomy axiom `s ⊑ o`;
/// - any other `(s, p, o)` becomes a logical edge, with a literal `o`
///   interned under its lexical form.
pub fn to_knowledge_graph(store: &TripleStore) -> KnowledgeGraph {
    let mut builder = GraphBuilder::with_capacity(store.num_terms(), store.len());
    for t in store.iter() {
        let st = store.decode(t);
        match st.p {
            Term::Iri(p) if p == TYPE_PREDICATE => {
                let node = builder.node(st.s.lexical());
                builder.set_type(node, st.o.lexical());
            }
            Term::Iri(p) if p == SUBTYPE_PREDICATE => {
                builder.subtype(st.s.lexical(), st.o.lexical());
            }
            _ => {
                builder.add_triple(st.s.lexical(), st.p.lexical(), st.o.lexical());
            }
        }
    }
    builder.build()
}

/// The reverse hand-off: exports a built [`KnowledgeGraph`] into a fresh
/// triple store (the inverse of [`to_knowledge_graph`]).
///
/// Only forward (logical) edges are written — the Def.-1 inverse mirrors
/// are reconstructed by whichever backend later reads the store. Node
/// types become `rdf:type` statements and taxonomy axioms become
/// `rdfs:subClassOf` statements.
///
/// Re-importing with [`to_knowledge_graph`] reproduces the same graph
/// **up to node-id assignment**: the importer hands out ids in
/// store-scan order, which can differ from the source graph's
/// first-mention order when a node's edges interleave labels (the CSR
/// iterates them label-sorted). Compare round trips by *name*, never by
/// source-graph `NodeId` — in particular, resolve datagen query seeds
/// by name after persisting with `nck gen`. (Both backends reading the
/// *same* store still agree with each other id for id.)
///
/// One class of nodes does not survive: an **isolated, untyped node**
/// (no edges in either direction, no `rdf:type`) appears in no
/// statement — triples cannot express a bare node — so it is absent
/// from the export and from any re-import.
/// Used by the `nck gen` CLI to persist datagen graphs as N-Triples and
/// by the backend-parity tests.
pub fn to_triple_store(graph: &KnowledgeGraph) -> TripleStore {
    let mut store = TripleStore::new();
    for v in graph.nodes() {
        for (l, t) in graph.edges(v) {
            if !graph.labels().is_inverse(l) {
                store.insert_iris(
                    graph.node_name(v),
                    graph.labels().name(l),
                    graph.node_name(t),
                );
            }
        }
        if let Some(ty) = graph.node_type(v) {
            store.insert_iris(
                graph.node_name(v),
                TYPE_PREDICATE,
                graph.taxonomy().name(ty),
            );
        }
    }
    let tax = graph.taxonomy();
    for i in 0..tax.len() {
        let ty = nck_graph::NodeTypeId::from_index(i);
        for &sup in tax.parents(ty) {
            store.insert_iris(tax.name(ty), SUBTYPE_PREDICATE, tax.name(sup));
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::Term;

    fn sample_store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert_iris("Merkel", "rdf:type", "politician");
        s.insert_iris("Obama", "rdf:type", "politician");
        s.insert_iris("politician", "rdfs:subClassOf", "person");
        s.insert_iris("Merkel", "studied", "Physics");
        s.insert_iris("Obama", "hasChild", "Malia");
        s.insert(
            &Term::iri("Merkel"),
            &Term::iri("birthDate"),
            &Term::literal("1954-07-17"),
        );
        s
    }

    #[test]
    fn statements_become_edges() {
        let g = to_knowledge_graph(&sample_store());
        let merkel = g.require_node("Merkel").unwrap();
        let studied = g.labels().get("studied").unwrap();
        let targets = g.neighbors_with_label(merkel, studied);
        assert_eq!(targets.len(), 1);
        assert_eq!(g.node_name(targets[0]), "Physics");
        // 4 logical edges: studied, hasChild, birthDate — plus nothing for
        // the reserved predicates.
        assert_eq!(g.num_logical_edges(), 3);
    }

    #[test]
    fn types_and_taxonomy_populated() {
        let g = to_knowledge_graph(&sample_store());
        let merkel = g.require_node("Merkel").unwrap();
        let ty = g.node_type(merkel).unwrap();
        assert_eq!(g.taxonomy().name(ty), "politician");
        let person = g.taxonomy().get("person").unwrap();
        assert!(g.taxonomy().is_subtype(ty, person));
    }

    #[test]
    fn literals_become_value_nodes() {
        let g = to_knowledge_graph(&sample_store());
        let date = g.require_node("1954-07-17").unwrap();
        let birth = g.labels().get("birthDate").unwrap();
        let inv = g.labels().inverse(birth);
        let owners = g.neighbors_with_label(date, inv);
        assert_eq!(owners.len(), 1);
        assert_eq!(g.node_name(owners[0]), "Merkel");
    }

    #[test]
    fn reserved_predicates_do_not_become_labels() {
        let g = to_knowledge_graph(&sample_store());
        assert!(g.labels().get(TYPE_PREDICATE).is_none());
        assert!(g.labels().get(SUBTYPE_PREDICATE).is_none());
    }

    #[test]
    fn empty_store_builds_empty_graph() {
        let g = to_knowledge_graph(&TripleStore::new());
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_logical_edges(), 0);
    }

    #[test]
    fn export_round_trips_by_name() {
        let g = to_knowledge_graph(&sample_store());
        assert_round_trips_by_name(&g);
    }

    #[test]
    fn export_round_trips_when_labels_interleave() {
        // Regression: node `a`'s edges arrive p, q, p — the CSR stores
        // them label-sorted (p,x),(p,z),(q,y), so the re-import assigns
        // node ids in a different order than the source graph. The round
        // trip must still be exact at the name level.
        let mut b = nck_graph::GraphBuilder::new();
        b.add_triple("a", "p", "x");
        b.add_triple("a", "q", "y");
        b.add_triple("a", "p", "z");
        assert_round_trips_by_name(&b.build());
    }

    /// Name-level round-trip equality: same node set, and per node the
    /// same `(label name, target name)` edge multiset and type. Node ids
    /// are *not* compared — the importer may assign them differently
    /// (see [`to_triple_store`]'s docs).
    fn assert_round_trips_by_name(g: &KnowledgeGraph) {
        let back = to_knowledge_graph(&to_triple_store(g));
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_logical_edges(), g.num_logical_edges());
        assert_eq!(back.labels().len(), g.labels().len());
        let named_edges = |g: &KnowledgeGraph, v| {
            let mut out: Vec<(String, String)> = g
                .edges(v)
                .map(|(l, t)| (g.labels().name(l).to_owned(), g.node_name(t).to_owned()))
                .collect();
            out.sort();
            out
        };
        for v in g.nodes() {
            let name = g.node_name(v);
            let bv = back.require_node(name).expect("node survives round trip");
            assert_eq!(named_edges(g, v), named_edges(&back, bv), "edges of {name}");
            assert_eq!(
                g.node_type(v).map(|t| g.taxonomy().name(t)),
                back.node_type(bv).map(|t| back.taxonomy().name(t)),
                "type of {name}"
            );
        }
    }
}
