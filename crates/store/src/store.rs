//! The [`TripleStore`] facade.
//!
//! Combines the term dictionary and the three index orderings behind a
//! string-friendly API: callers insert `(subject, predicate, object)`
//! statements as [`Term`]s and query with optional constraints; all
//! internal work happens on dictionary ids.

use crate::dictionary::{Term, TermDictionary, TermId};
use crate::index::TripleIndexes;
use crate::triple::{Triple, TriplePattern};

/// An in-memory, dictionary-encoded triple store with SPO/POS/OSP indexes.
#[derive(Debug, Clone, Default)]
pub struct TripleStore {
    dict: TermDictionary,
    indexes: TripleIndexes,
}

/// A decoded query answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement<'a> {
    /// Subject term.
    pub s: &'a Term,
    /// Predicate term.
    pub p: &'a Term,
    /// Object term.
    pub o: &'a Term,
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// True when the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Number of distinct terms in the dictionary.
    pub fn num_terms(&self) -> usize {
        self.dict.len()
    }

    /// Interns a term, returning its id.
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.dict.intern(term)
    }

    /// The id of `term`, if known.
    pub fn term_id(&self, term: &Term) -> Option<TermId> {
        self.dict.get(term)
    }

    /// The term behind `id`, if valid.
    pub fn term(&self, id: TermId) -> Option<&Term> {
        self.dict.resolve(id)
    }

    /// Inserts a statement; returns `true` when it was new.
    pub fn insert(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let t = Triple::new(
            self.dict.intern(s),
            self.dict.intern(p),
            self.dict.intern(o),
        );
        self.indexes.insert(t)
    }

    /// Inserts a statement of three IRIs (the common bulk-load shape).
    pub fn insert_iris(&mut self, s: &str, p: &str, o: &str) -> bool {
        self.insert(&Term::iri(s), &Term::iri(p), &Term::iri(o))
    }

    /// Removes a statement; returns `true` when it was present.
    pub fn remove(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.get(s), self.dict.get(p), self.dict.get(o)) {
            (Some(s), Some(p), Some(o)) => self.indexes.remove(Triple::new(s, p, o)),
            _ => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, s: &Term, p: &Term, o: &Term) -> bool {
        match (self.dict.get(s), self.dict.get(p), self.dict.get(o)) {
            (Some(s), Some(p), Some(o)) => self.indexes.contains(Triple::new(s, p, o)),
            _ => false,
        }
    }

    /// Streams id-level triples matching a pattern of optional terms.
    ///
    /// A constraint on a term that is not in the dictionary matches
    /// nothing (the empty iterator), mirroring SQL's empty result rather
    /// than an error.
    pub fn query<'a>(
        &'a self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> Box<dyn Iterator<Item = Triple> + 'a> {
        let resolve = |t: Option<&Term>| -> Result<Option<TermId>, ()> {
            match t {
                None => Ok(None),
                Some(term) => match self.dict.get(term) {
                    Some(id) => Ok(Some(id)),
                    None => Err(()),
                },
            }
        };
        match (resolve(s), resolve(p), resolve(o)) {
            (Ok(s), Ok(p), Ok(o)) => self.indexes.scan(&TriplePattern::new(s, p, o)),
            _ => Box::new(std::iter::empty()),
        }
    }

    /// Streams decoded statements matching a pattern.
    pub fn query_decoded<'a>(
        &'a self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> impl Iterator<Item = Statement<'a>> + 'a {
        self.query(s, p, o).map(move |t| self.decode(t))
    }

    /// Streams id-level triples for an id-level pattern.
    pub fn scan<'a>(&'a self, pattern: &TriplePattern) -> Box<dyn Iterator<Item = Triple> + 'a> {
        self.indexes.scan(pattern)
    }

    /// Iterates every triple (SPO order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.indexes.iter()
    }

    /// Decodes an id triple into terms.
    ///
    /// # Panics
    ///
    /// Panics if the triple's ids did not come from this store.
    pub fn decode(&self, t: Triple) -> Statement<'_> {
        Statement {
            s: self.dict.resolve(t.s).expect("foreign subject id"),
            p: self.dict.resolve(t.p).expect("foreign predicate id"),
            o: self.dict.resolve(t.o).expect("foreign object id"),
        }
    }

    /// Distinct predicates in use (by scanning; intended for tooling).
    pub fn predicates(&self) -> Vec<TermId> {
        let mut out: Vec<TermId> = self.iter().map(|t| t.p).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn politicians() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert_iris("Merkel", "studied", "Physics");
        s.insert_iris("Putin", "studied", "Law");
        s.insert_iris("Hollande", "hasChild", "Thomas");
        s.insert_iris("Hollande", "hasChild", "Flora");
        s.insert(
            &Term::iri("Merkel"),
            &Term::iri("birthDate"),
            &Term::literal("1954-07-17"),
        );
        s
    }

    #[test]
    fn insert_query_remove_cycle() {
        let mut s = politicians();
        assert_eq!(s.len(), 5);
        assert!(s.contains(
            &Term::iri("Merkel"),
            &Term::iri("studied"),
            &Term::iri("Physics")
        ));
        assert!(s.remove(
            &Term::iri("Merkel"),
            &Term::iri("studied"),
            &Term::iri("Physics")
        ));
        assert!(!s.contains(
            &Term::iri("Merkel"),
            &Term::iri("studied"),
            &Term::iri("Physics")
        ));
        assert_eq!(s.len(), 4);
        // Removing a triple with unknown terms is a no-op.
        assert!(!s.remove(
            &Term::iri("Nobody"),
            &Term::iri("studied"),
            &Term::iri("Physics")
        ));
    }

    #[test]
    fn query_by_subject() {
        let s = politicians();
        let results: Vec<_> = s
            .query_decoded(Some(&Term::iri("Hollande")), None, None)
            .map(|st| st.o.lexical().to_owned())
            .collect();
        assert_eq!(results.len(), 2);
        assert!(results.contains(&"Thomas".to_owned()));
        assert!(results.contains(&"Flora".to_owned()));
    }

    #[test]
    fn query_by_predicate_and_object() {
        let s = politicians();
        let studied_law: Vec<_> = s
            .query_decoded(None, Some(&Term::iri("studied")), Some(&Term::iri("Law")))
            .map(|st| st.s.lexical().to_owned())
            .collect();
        assert_eq!(studied_law, vec!["Putin".to_owned()]);
    }

    #[test]
    fn unknown_term_matches_nothing() {
        let s = politicians();
        assert_eq!(s.query(Some(&Term::iri("Ghost")), None, None).count(), 0);
    }

    #[test]
    fn literals_are_distinct_from_iris() {
        let s = politicians();
        // birthDate object is a literal; querying the IRI form finds nothing.
        assert_eq!(
            s.query(None, None, Some(&Term::iri("1954-07-17"))).count(),
            0
        );
        assert_eq!(
            s.query(None, None, Some(&Term::literal("1954-07-17")))
                .count(),
            1
        );
    }

    #[test]
    fn predicates_deduplicated() {
        let s = politicians();
        let preds: Vec<String> = s
            .predicates()
            .into_iter()
            .map(|id| s.term(id).unwrap().lexical().to_owned())
            .collect();
        assert_eq!(preds.len(), 3);
    }

    #[test]
    fn full_scan_covers_everything() {
        let s = politicians();
        assert_eq!(s.iter().count(), s.len());
        assert_eq!(s.query(None, None, None).count(), s.len());
    }
}
