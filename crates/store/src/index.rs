//! The three triple orderings: SPO, POS, OSP.
//!
//! Any pattern whose bound positions form a prefix of one of the three
//! orderings is a contiguous key range in that ordering:
//!
//! | bound       | ordering | prefix        |
//! |-------------|----------|---------------|
//! | — (scan)    | SPO      | ∅             |
//! | S           | SPO      | (s)           |
//! | S, P        | SPO      | (s, p)        |
//! | S, P, O     | SPO      | (s, p, o)     |
//! | P           | POS      | (p)           |
//! | P, O        | POS      | (p, o)        |
//! | O           | OSP      | (o)           |
//! | O, S        | OSP      | (o, s)        |
//!
//! Each ordering is a `BTreeSet` over permuted `(u32, u32, u32)` keys; all
//! three are updated on insert/remove, so the store costs 3× memory for
//! O(log n + answer) pattern scans — the classic triple-store trade-off.

use crate::dictionary::TermId;
use crate::triple::{Triple, TriplePattern};
use std::collections::BTreeSet;
use std::ops::Bound;

type Key = (u32, u32, u32);

/// Which ordering a pattern resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// subject-predicate-object
    Spo,
    /// predicate-object-subject
    Pos,
    /// object-subject-predicate
    Osp,
}

/// The triple index set.
#[derive(Debug, Clone, Default)]
pub struct TripleIndexes {
    spo: BTreeSet<Key>,
    pos: BTreeSet<Key>,
    osp: BTreeSet<Key>,
}

impl TripleIndexes {
    /// Creates empty indexes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a triple into all orderings; returns `true` if it was new.
    pub fn insert(&mut self, t: Triple) -> bool {
        let fresh = self.spo.insert((t.s.0, t.p.0, t.o.0));
        if fresh {
            self.pos.insert((t.p.0, t.o.0, t.s.0));
            self.osp.insert((t.o.0, t.s.0, t.p.0));
        }
        fresh
    }

    /// Removes a triple from all orderings; returns `true` if present.
    pub fn remove(&mut self, t: Triple) -> bool {
        let was = self.spo.remove(&(t.s.0, t.p.0, t.o.0));
        if was {
            self.pos.remove(&(t.p.0, t.o.0, t.s.0));
            self.osp.remove(&(t.o.0, t.s.0, t.p.0));
        }
        was
    }

    /// Number of stored triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, t: Triple) -> bool {
        self.spo.contains(&(t.s.0, t.p.0, t.o.0))
    }

    /// Chooses the ordering whose prefix covers the pattern's bound
    /// positions (S* → SPO, P-without-S → POS, O-only / O+S → OSP).
    pub fn choose_ordering(pattern: &TriplePattern) -> Ordering {
        match (
            pattern.s.is_some(),
            pattern.p.is_some(),
            pattern.o.is_some(),
        ) {
            // S bound (with or without P/O): SPO unless only S+O, which OSP
            // serves with the (o, s) prefix.
            (true, false, true) => Ordering::Osp,
            (true, _, _) => Ordering::Spo,
            (false, true, _) => Ordering::Pos,
            (false, false, true) => Ordering::Osp,
            (false, false, false) => Ordering::Spo,
        }
    }

    /// Streams all triples matching `pattern` via the best ordering.
    pub fn scan<'a>(&'a self, pattern: &TriplePattern) -> Box<dyn Iterator<Item = Triple> + 'a> {
        let ordering = Self::choose_ordering(pattern);
        match ordering {
            Ordering::Spo => {
                let range = prefix_range(pattern.s, pattern.p, pattern.o);
                Box::new(
                    self.spo
                        .range(range)
                        .map(|&(s, p, o)| Triple::new(TermId(s), TermId(p), TermId(o))),
                )
            }
            Ordering::Pos => {
                let range = prefix_range(pattern.p, pattern.o, pattern.s);
                Box::new(
                    self.pos
                        .range(range)
                        .map(|&(p, o, s)| Triple::new(TermId(s), TermId(p), TermId(o))),
                )
            }
            Ordering::Osp => {
                let range = prefix_range(pattern.o, pattern.s, pattern.p);
                let p_filter = pattern.p;
                Box::new(
                    self.osp
                        .range(range)
                        .map(|&(o, s, p)| Triple::new(TermId(s), TermId(p), TermId(o)))
                        .filter(move |t| p_filter.is_none_or(|p| p == t.p)),
                )
            }
        }
    }

    /// Iterates every triple in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo
            .iter()
            .map(|&(s, p, o)| Triple::new(TermId(s), TermId(p), TermId(o)))
    }
}

/// Builds the `BTreeSet::range` bounds for a bound-prefix query over a
/// permuted key `(a, b, c)` where `a` must be bound for `b` to be usable,
/// and `b` for `c`.
fn prefix_range(
    a: Option<TermId>,
    b: Option<TermId>,
    c: Option<TermId>,
) -> (Bound<Key>, Bound<Key>) {
    match (a, b, c) {
        (None, _, _) => (Bound::Unbounded, Bound::Unbounded),
        (Some(a), None, _) => (
            Bound::Included((a.0, 0, 0)),
            Bound::Included((a.0, u32::MAX, u32::MAX)),
        ),
        (Some(a), Some(b), None) => (
            Bound::Included((a.0, b.0, 0)),
            Bound::Included((a.0, b.0, u32::MAX)),
        ),
        (Some(a), Some(b), Some(c)) => (
            Bound::Included((a.0, b.0, c.0)),
            Bound::Included((a.0, b.0, c.0)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(TermId(s), TermId(p), TermId(o))
    }

    fn sample() -> TripleIndexes {
        let mut idx = TripleIndexes::new();
        for triple in [
            t(1, 10, 2),
            t(1, 10, 3),
            t(1, 11, 2),
            t(2, 10, 1),
            t(3, 11, 1),
        ] {
            idx.insert(triple);
        }
        idx
    }

    #[test]
    fn insert_is_idempotent() {
        let mut idx = TripleIndexes::new();
        assert!(idx.insert(t(1, 2, 3)));
        assert!(!idx.insert(t(1, 2, 3)));
        assert_eq!(idx.len(), 1);
        assert!(idx.contains(t(1, 2, 3)));
    }

    #[test]
    fn remove_updates_all_orderings() {
        let mut idx = sample();
        assert!(idx.remove(t(1, 10, 2)));
        assert!(!idx.remove(t(1, 10, 2)));
        assert_eq!(idx.len(), 4);
        // No ordering still returns the removed triple.
        for pattern in [
            TriplePattern::with_s(TermId(1)),
            TriplePattern::with_p(TermId(10)),
            TriplePattern::with_o(TermId(2)),
        ] {
            assert!(idx.scan(&pattern).all(|x| x != t(1, 10, 2)));
        }
    }

    #[test]
    fn all_eight_pattern_shapes_agree_with_naive_filter() {
        let idx = sample();
        let all: Vec<Triple> = idx.iter().collect();
        let candidates = [
            TriplePattern::ANY,
            TriplePattern::with_s(TermId(1)),
            TriplePattern::with_p(TermId(10)),
            TriplePattern::with_o(TermId(2)),
            TriplePattern::with_sp(TermId(1), TermId(10)),
            TriplePattern::with_po(TermId(10), TermId(2)),
            TriplePattern::with_so(TermId(1), TermId(2)),
            TriplePattern::exact(t(1, 11, 2)),
        ];
        for pattern in candidates {
            let mut expected: Vec<Triple> =
                all.iter().copied().filter(|x| pattern.matches(x)).collect();
            let mut got: Vec<Triple> = idx.scan(&pattern).collect();
            expected.sort();
            got.sort();
            assert_eq!(got, expected, "pattern {pattern:?}");
        }
    }

    #[test]
    fn ordering_choice_covers_bound_prefixes() {
        use Ordering::*;
        assert_eq!(TripleIndexes::choose_ordering(&TriplePattern::ANY), Spo);
        assert_eq!(
            TripleIndexes::choose_ordering(&TriplePattern::with_s(TermId(1))),
            Spo
        );
        assert_eq!(
            TripleIndexes::choose_ordering(&TriplePattern::with_p(TermId(1))),
            Pos
        );
        assert_eq!(
            TripleIndexes::choose_ordering(&TriplePattern::with_o(TermId(1))),
            Osp
        );
        assert_eq!(
            TripleIndexes::choose_ordering(&TriplePattern::with_so(TermId(1), TermId(2))),
            Osp
        );
        assert_eq!(
            TripleIndexes::choose_ordering(&TriplePattern::with_po(TermId(1), TermId(2))),
            Pos
        );
    }

    #[test]
    fn boundary_ids_scan_correctly() {
        let mut idx = TripleIndexes::new();
        idx.insert(t(0, 0, 0));
        idx.insert(t(u32::MAX, u32::MAX, u32::MAX));
        assert_eq!(idx.scan(&TriplePattern::with_s(TermId(0))).count(), 1);
        assert_eq!(
            idx.scan(&TriplePattern::with_s(TermId(u32::MAX))).count(),
            1
        );
        assert_eq!(idx.scan(&TriplePattern::ANY).count(), 2);
    }
}
