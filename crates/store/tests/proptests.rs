//! Property-based tests for the triple store.

#![forbid(unsafe_code)]

use nck_store::dictionary::Term;
use nck_store::ntriples::{read_ntriples, write_ntriples};
use nck_store::triple::TriplePattern;
use nck_store::TripleStore;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u8..12).prop_map(|i| Term::iri(format!("node{i}"))),
        (0u8..4).prop_map(|i| Term::literal(format!("value {i} \"x\"\n\t\\"))),
    ]
}

fn statements() -> impl Strategy<Value = Vec<(Term, Term, Term)>> {
    prop::collection::vec(
        (
            (0u8..12).prop_map(|i| Term::iri(format!("node{i}"))),
            (0u8..5).prop_map(|i| Term::iri(format!("pred{i}"))),
            term_strategy(),
        ),
        0..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_len_equals_distinct_statements(stmts in statements()) {
        let mut store = TripleStore::new();
        for (s, p, o) in &stmts {
            store.insert(s, p, o);
        }
        let distinct: BTreeSet<_> = stmts.iter().collect();
        prop_assert_eq!(store.len(), distinct.len());
    }

    #[test]
    fn every_pattern_agrees_with_naive_filter(stmts in statements()) {
        let mut store = TripleStore::new();
        for (s, p, o) in &stmts {
            store.insert(s, p, o);
        }
        let all: Vec<_> = store.iter().collect();
        // Exercise patterns derived from actual triples (and ANY).
        let mut patterns = vec![TriplePattern::ANY];
        for t in all.iter().take(5) {
            patterns.push(TriplePattern::with_s(t.s));
            patterns.push(TriplePattern::with_p(t.p));
            patterns.push(TriplePattern::with_o(t.o));
            patterns.push(TriplePattern::with_sp(t.s, t.p));
            patterns.push(TriplePattern::with_po(t.p, t.o));
            patterns.push(TriplePattern::with_so(t.s, t.o));
            patterns.push(TriplePattern::exact(*t));
        }
        for pattern in patterns {
            let mut expected: Vec<_> = all.iter().copied().filter(|t| pattern.matches(t)).collect();
            let mut got: Vec<_> = store.scan(&pattern).collect();
            expected.sort();
            got.sort();
            prop_assert_eq!(got, expected, "pattern {:?}", pattern);
        }
    }

    #[test]
    fn insert_then_remove_restores_absence(stmts in statements()) {
        let mut store = TripleStore::new();
        for (s, p, o) in &stmts {
            store.insert(s, p, o);
        }
        for (s, p, o) in &stmts {
            store.remove(s, p, o);
        }
        prop_assert!(store.is_empty());
        prop_assert_eq!(store.iter().count(), 0);
    }

    #[test]
    fn ntriples_round_trip(stmts in statements()) {
        let mut store = TripleStore::new();
        for (s, p, o) in &stmts {
            store.insert(s, p, o);
        }
        let mut buf = Vec::new();
        write_ntriples(&store, &mut buf).unwrap();
        let back = read_ntriples(&buf[..]).unwrap();
        prop_assert_eq!(back.len(), store.len());
        for (s, p, o) in &stmts {
            prop_assert!(back.contains(s, p, o), "missing {:?} {:?} {:?}", s, p, o);
        }
    }

    #[test]
    fn graph_view_preserves_edge_count(stmts in statements()) {
        let mut store = TripleStore::new();
        for (s, p, o) in &stmts {
            store.insert(s, p, o);
        }
        let g = nck_store::graph_view::to_knowledge_graph(&store);
        // Logical edges = distinct statements up to lexical collapsing of
        // IRI/literal objects with identical text.
        let distinct_lexical: BTreeSet<(String, String, String)> = stmts
            .iter()
            .map(|(s, p, o)| {
                (
                    s.lexical().to_owned(),
                    p.lexical().to_owned(),
                    o.lexical().to_owned(),
                )
            })
            .collect();
        prop_assert_eq!(g.num_logical_edges(), distinct_lexical.len());
    }
}
