//! Socket serving parity: a real server on an ephemeral port, real
//! client sockets, and the contract that **every served response is
//! byte-for-byte (after JSON decode) the in-process
//! [`NckService::query`] answer** — on all three backends, under eight
//! concurrent client connections.
//!
//! The transport is allowed to add exactly one thing to a response: the
//! wall time (`secs`), which both sides clear before comparing.

#![forbid(unsafe_code)]

use notable_characteristics::api::{Backend, NckService, QueryRequest, QueryResponse};
use notable_characteristics::core::config::{ContextRwConfig, FindNcConfig, PathMiningConfig};
use notable_characteristics::core::context::TypeFilter;
use notable_characteristics::datagen::{generate, DomainId, GeneratorConfig};
use notable_characteristics::engine::EngineConfig;
use notable_characteristics::serve::{serve, ServeClient, ServeConfig};
use notable_characteristics::store::graph_view::to_triple_store;
use std::sync::Arc;

const CLIENTS: usize = 8;

fn engine_config() -> EngineConfig {
    EngineConfig {
        findnc: FindNcConfig {
            context: ContextRwConfig {
                mining: PathMiningConfig {
                    walks: 4_000,
                    max_length: 4,
                    seed: 99,
                    parallel: true,
                },
                num_metapaths: 5,
                type_filter: TypeFilter::CommonAncestor,
                max_endpoint_fraction: 0.25,
            },
            context_size: 30,
            ..FindNcConfig::default()
        },
        ..EngineConfig::default()
    }
}

/// The overlapping mix from `tests/concurrent_parity.rs`: shared-seed
/// pairs plus exact repeats, so concurrent clients race caches and
/// single-flight slots, not just distinct keys.
fn query_mix(dataset: &notable_characteristics::datagen::Dataset) -> Vec<QueryRequest> {
    let members = &dataset
        .domain(DomainId::Actors)
        .expect("actors domain")
        .members;
    let name = |i: usize| dataset.graph.node_name(members[i]).to_owned();
    let mut mix: Vec<QueryRequest> = (0..4)
        .map(|i| QueryRequest::entities([name(0), name(1 + i)]))
        .collect();
    mix.push(mix[0].clone());
    mix.push(mix[1].clone());
    mix
}

fn serve_matches_in_process(backend: Backend) {
    let dataset = generate(&GeneratorConfig::tiny(13));
    let mix = query_mix(&dataset);
    let service = Arc::new(
        NckService::builder()
            .triple_store(to_triple_store(&dataset.graph))
            .backend(backend)
            .engine(engine_config())
            .build()
            .expect("service builds"),
    );

    // The in-process reference, from the very service instance being
    // served — this is the id-for-id contract, not a lookalike.
    let reference: Vec<QueryResponse> = mix
        .iter()
        .map(|request| {
            let mut response = service.query(request).expect("in-process query");
            response.secs = None;
            response
        })
        .collect();

    let handle =
        serve(Arc::clone(&service), "127.0.0.1:0", ServeConfig::default()).expect("server binds");
    let addr = handle.addr();

    std::thread::scope(|s| {
        for t in 0..CLIENTS {
            let (mix, reference) = (&mix, &reference);
            s.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connects");
                for round in 0..2 {
                    for i in 0..mix.len() {
                        let qi = (i + t + round) % mix.len();
                        let mut served = client.call(&mix[qi]).expect("served query");
                        served.secs = None;
                        assert_eq!(
                            served,
                            reference[qi],
                            "{}/client{t}/q{qi}: served response diverged",
                            backend.name()
                        );
                    }
                }
            });
        }
    });

    let metrics = handle.shutdown();
    let expected = (CLIENTS * 2 * mix.len()) as u64;
    assert_eq!(
        metrics.requests_admitted, expected,
        "every request admitted"
    );
    assert_eq!(metrics.responses_ok, expected, "every response succeeded");
    assert_eq!(metrics.requests_shed, 0);
    assert_eq!(metrics.frames_malformed, 0);
    assert_eq!(metrics.connections_accepted, CLIENTS as u64);
}

#[test]
fn served_responses_match_in_process_on_csr() {
    serve_matches_in_process(Backend::Csr);
}

#[test]
fn served_responses_match_in_process_on_store() {
    serve_matches_in_process(Backend::Store);
}

#[test]
fn served_responses_match_in_process_on_compact() {
    serve_matches_in_process(Backend::Compact);
}

/// Typed errors take the same trip: an in-process error and a served
/// error must carry the identical code and message.
#[test]
fn served_errors_match_in_process_bodies() {
    let dataset = generate(&GeneratorConfig::tiny(13));
    let service = Arc::new(
        NckService::builder()
            .triple_store(to_triple_store(&dataset.graph))
            .engine(engine_config())
            .build()
            .expect("service builds"),
    );
    let request = QueryRequest::entities(["No Such Entity Anywhere"]);
    let local = service.query(&request).expect_err("unknown entity").body();

    let handle =
        serve(Arc::clone(&service), "127.0.0.1:0", ServeConfig::default()).expect("server binds");
    let mut client = ServeClient::connect(handle.addr()).expect("client connects");
    match client.call(&request) {
        Err(notable_characteristics::serve::ClientError::Api(served)) => {
            assert_eq!(served, local, "served error body diverged");
        }
        other => panic!("expected a typed API error, got {other:?}"),
    }
    handle.shutdown();
}
