//! Overload behavior under saturation: a server with one deliberately
//! slow worker (`handler_delay_ms`) and a tiny admission queue must
//! shed excess load with typed `overloaded` errors, fire per-request
//! deadlines within tolerance, answer every *accepted* request
//! correctly, and drain gracefully on shutdown — zero admitted requests
//! dropped.

#![forbid(unsafe_code)]

use notable_characteristics::api::{NckService, QueryRequest, QueryResponse};
use notable_characteristics::prelude::GraphBuilder;
use notable_characteristics::serve::{serve, ClientError, ServeClient, ServeConfig, ServerHandle};
use std::sync::Arc;

/// Worker execution time injected into every request.
const DELAY_MS: u64 = 100;

fn toy_service() -> Arc<NckService> {
    let mut b = GraphBuilder::new();
    for (leader, subject) in [("Ada", "Math"), ("Grace", "Math"), ("Alan", "Logic")] {
        b.add_triple(leader, "studied", subject);
        b.add_triple(leader, "memberOf", "Pioneers");
    }
    Arc::new(
        NckService::builder()
            .knowledge_graph(b.build())
            .build()
            .expect("service builds"),
    )
}

fn slow_server(workers: usize, queue_depth: usize) -> ServerHandle {
    serve(
        toy_service(),
        "127.0.0.1:0",
        ServeConfig {
            workers,
            queue_depth,
            handler_delay_ms: DELAY_MS,
            ..ServeConfig::default()
        },
    )
    .expect("server binds")
}

/// The probe query: resolves to a typed `unknown_entity` answer, so a
/// "correct" response is cheap to verify and still exercises the full
/// admission → worker → response path.
fn probe() -> QueryRequest {
    QueryRequest::entities(["Nobody"])
}

#[test]
fn saturation_sheds_typed_overload_errors_and_answers_the_accepted() {
    // One worker sleeping 100 ms per request, two queue slots: a burst
    // of 8 pipelined requests can keep at most a handful in the system;
    // the rest must shed *immediately* with a typed error.
    let handle = slow_server(1, 2);
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    let started = std::time::Instant::now();
    let ids: Vec<u64> = (0..8)
        .map(|_| client.send(&probe()).expect("send"))
        .collect();

    let mut accepted = 0u64;
    let mut shed = 0u64;
    for id in ids {
        match client.recv(id) {
            Err(ClientError::Api(body)) if body.error == "unknown_entity" => accepted += 1,
            Err(ClientError::Api(body)) if body.error == "overloaded" => {
                assert!(
                    body.message.contains("queue full"),
                    "shed reason names the queue: {}",
                    body.message
                );
                shed += 1;
            }
            other => panic!("expected accepted or shed, got {other:?}"),
        }
    }
    assert_eq!(accepted + shed, 8, "every request answered exactly once");
    assert!(shed >= 1, "a 2-deep queue cannot absorb an 8-burst");
    // At least the two queue slots were admitted; whether the worker had
    // already popped one when the burst landed is a scheduling race.
    assert!(accepted >= 2, "the queue alone holds 2 (got {accepted})");
    // Sheds are immediate, not queued: total wall time is bounded by the
    // accepted requests' serial execution, far below 8 * DELAY_MS.
    let elapsed = started.elapsed().as_millis() as u64;
    assert!(
        elapsed < 8 * DELAY_MS,
        "shedding must not serialize behind the worker ({elapsed}ms)"
    );

    let metrics = handle.shutdown();
    assert_eq!(metrics.requests_admitted, accepted);
    assert_eq!(metrics.requests_shed, shed);
    assert_eq!(metrics.responses_ok, 0);
    assert_eq!(metrics.responses_err, 8);
}

#[test]
fn deadlines_fire_within_tolerance() {
    // One slow worker; request A occupies it for ~100 ms, request B
    // carries a 30 ms deadline and must age out in the queue.
    let handle = slow_server(1, 4);
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    let a = client.send(&probe()).expect("send A");
    let started = std::time::Instant::now();
    let b = client
        .send_with_deadline(&probe(), Some(30))
        .expect("send B");

    match client.recv(a) {
        Err(ClientError::Api(body)) => assert_eq!(body.error, "unknown_entity"),
        other => panic!("request A must be answered, got {other:?}"),
    }
    match client.recv(b) {
        Err(ClientError::Api(body)) => {
            assert_eq!(body.error, "deadline_exceeded");
            // The message carries both budget and actual elapsed time:
            // "deadline exceeded: 30ms allowed, NNNms elapsed".
            assert!(body.message.contains("30ms allowed"), "{}", body.message);
            let elapsed_ms: u64 = body
                .message
                .split("allowed, ")
                .nth(1)
                .and_then(|s| s.split("ms elapsed").next())
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("unparseable message {:?}", body.message));
            assert!(elapsed_ms >= 30, "fired only after the deadline");
            assert!(
                elapsed_ms <= 3 * DELAY_MS,
                "fired when the worker freed, not arbitrarily late ({elapsed_ms}ms)"
            );
        }
        other => panic!("request B must miss its deadline, got {other:?}"),
    }
    // The miss is reported as soon as the slow request releases the
    // worker — within one handler slot plus scheduling slack.
    let waited = started.elapsed().as_millis() as u64;
    assert!(waited <= 3 * DELAY_MS, "B answered late ({waited}ms)");

    let metrics = handle.shutdown();
    assert_eq!(metrics.deadline_misses, 1);
    assert_eq!(metrics.requests_admitted, 2);
    assert_eq!(metrics.requests_shed, 0);
}

#[test]
fn default_deadline_applies_to_requests_carrying_none() {
    let handle = serve(
        toy_service(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_depth: 4,
            handler_delay_ms: DELAY_MS,
            default_deadline_ms: Some(30),
            ..ServeConfig::default()
        },
    )
    .expect("server binds");
    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    // A occupies the worker past both deadlines; B (no explicit
    // deadline) inherits the 30 ms default and ages out queued.
    let a = client.send(&probe()).expect("send A");
    let b = client.send(&probe()).expect("send B");
    // A itself finishes at ~100 ms — also past the 30 ms default: the
    // post-execution check reports it too.
    for id in [a, b] {
        match client.recv(id) {
            Err(ClientError::Api(body)) => assert_eq!(body.error, "deadline_exceeded"),
            other => panic!("expected a deadline miss, got {other:?}"),
        }
    }
    let metrics = handle.shutdown();
    assert_eq!(metrics.deadline_misses, 2);
}

#[test]
fn graceful_drain_finishes_every_admitted_request() {
    // Four admitted slow requests in flight/queued, then shutdown: the
    // drain must finish and flush all four — zero dropped — while new
    // arrivals are shed.
    let handle = slow_server(1, 8);
    let addr = handle.addr();
    let mut client = ServeClient::connect(addr).expect("connect");
    let ids: Vec<u64> = (0..4)
        .map(|_| client.send(&probe()).expect("send"))
        .collect();
    // Let the reader admit all four before draining.
    std::thread::sleep(std::time::Duration::from_millis(30));
    assert_eq!(handle.metrics().requests_admitted, 4, "all four admitted");

    let drainer = std::thread::spawn(move || handle.shutdown());

    // Every admitted request is still answered, correctly, during drain.
    for id in ids {
        match client.recv(id) {
            Err(ClientError::Api(body)) => assert_eq!(body.error, "unknown_entity"),
            other => panic!("admitted request dropped in drain: {other:?}"),
        }
    }
    let metrics = drainer.join().expect("drain completes");
    assert_eq!(metrics.requests_admitted, 4);
    assert_eq!(metrics.responses_err, 4, "all four answers flushed");
    assert_eq!(metrics.deadline_misses, 0);

    // The drained server is gone: connecting (or being served) fails.
    match ServeClient::connect(addr) {
        Err(_) => {}
        Ok(mut late) => {
            let outcome = late.call(&probe());
            assert!(outcome.is_err(), "a drained server must not serve");
        }
    }
}

#[test]
fn requests_arriving_during_drain_are_shed_typed() {
    // A slow request pins the worker; shutdown starts; a request racing
    // the drain on an *already-open* connection is shed with a typed
    // error (readers keep polling ~25 ms, so there is a short window
    // where the frame is still read).
    let handle = slow_server(1, 8);
    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    let a = client.send(&probe()).expect("send A");

    std::thread::sleep(std::time::Duration::from_millis(20));
    let drainer = std::thread::spawn(move || handle.shutdown());
    // Race one more request into the drain window.
    let late = client.send(&probe());

    match client.recv(a) {
        Err(ClientError::Api(body)) => assert_eq!(body.error, "unknown_entity"),
        other => panic!("admitted request dropped in drain: {other:?}"),
    }
    if let Ok(late_id) = late {
        match client.recv(late_id) {
            // Either the reader saw the drain flag and shed it typed…
            Err(ClientError::Api(body)) => assert_eq!(body.error, "overloaded"),
            // …or the connection closed before the frame was read.
            Err(ClientError::Io(_)) => {}
            Ok(response) => panic!("draining server served new work: {response:?}"),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let metrics = drainer.join().expect("drain completes");
    assert_eq!(metrics.requests_admitted, 1, "only the pre-drain request");
}

/// The connection budget: beyond `max_connections`, a new connection is
/// turned away with one typed `overloaded` frame, and existing clients
/// are unaffected.
#[test]
fn connection_limit_rejects_with_typed_error() {
    let handle = serve(
        toy_service(),
        "127.0.0.1:0",
        ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        },
    )
    .expect("server binds");

    let mut first = ServeClient::connect(handle.addr()).expect("first connects");
    match first.call(&probe()) {
        Err(ClientError::Api(body)) => assert_eq!(body.error, "unknown_entity"),
        other => panic!("first client must be served, got {other:?}"),
    }

    let mut second = ServeClient::connect(handle.addr()).expect("TCP accepts");
    match second.call(&probe()) {
        Err(ClientError::Api(body)) => {
            assert_eq!(body.error, "overloaded");
            assert!(
                body.message.contains("connection limit"),
                "{}",
                body.message
            );
        }
        other => panic!("second client must be rejected, got {other:?}"),
    }

    // The first connection still works.
    match first.call(&probe()) {
        Err(ClientError::Api(body)) => assert_eq!(body.error, "unknown_entity"),
        other => panic!("first client broken by the rejection, got {other:?}"),
    }
    let metrics = handle.shutdown();
    assert_eq!(metrics.connections_rejected, 1);
    assert_eq!(metrics.connections_accepted, 1);
}

/// `QueryResponse` still flows under load: one fast server sanity check
/// that an accepted request under no contention returns `ok`.
#[test]
fn unloaded_server_answers_ok() {
    let mut b = GraphBuilder::new();
    for i in 0..12 {
        let name = format!("Leader {i}");
        b.add_triple(&name, "studied", "Law");
        b.add_triple(&name, "hasChild", &format!("Child {i}"));
        b.add_triple(&name, "memberOf", "G20");
    }
    b.add_triple("Leader 0", "studied", "Physics");
    // The toy graph is untyped: the default common-ancestor filter would
    // leave zero context candidates.
    let mut config = notable_characteristics::engine::EngineConfig::default();
    config.findnc.context.mining.walks = 2_000;
    config.findnc.context.type_filter = notable_characteristics::core::context::TypeFilter::None;
    config.findnc.context_size = 10;
    let service = Arc::new(
        NckService::builder()
            .knowledge_graph(b.build())
            .engine(config)
            .build()
            .expect("service builds"),
    );
    let handle =
        serve(Arc::clone(&service), "127.0.0.1:0", ServeConfig::default()).expect("server binds");
    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    let request = QueryRequest::entities(["Leader 0", "Leader 1"]);
    let served: QueryResponse = client.call(&request).expect("served ok");
    assert_eq!(served.query, "Leader 0,Leader 1");
    let metrics = handle.shutdown();
    assert_eq!(metrics.responses_ok, 1);
}
