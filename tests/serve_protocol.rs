//! Adversarial wire tests: whatever bytes arrive — truncated frames,
//! oversize length prefixes, garbage payloads, invalid JSON, unknown
//! fields, mid-request disconnects — the server answers with a typed
//! `ApiError` or closes the connection cleanly. It never wedges and
//! never crashes: after every hostile act the same server must still
//! answer a well-formed request.
//!
//! A proptest rounds out the suite by round-tripping request framing
//! (arbitrary payload bytes and envelope contents) through the codec.

#![forbid(unsafe_code)]

use notable_characteristics::api::{json, JsonValue, NckService, QueryRequest};
use notable_characteristics::prelude::GraphBuilder;
use notable_characteristics::serve::{
    serve, ClientError, ServeClient, ServeConfig, ServerHandle, WireRequest,
};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// A deliberately small frame limit so oversize behavior is cheap to hit.
const MAX_FRAME: usize = 4096;

/// A 3-leader toy service: protocol tests need liveness round trips,
/// not pipeline depth.
fn toy_server() -> ServerHandle {
    let mut b = GraphBuilder::new();
    for (leader, subject) in [("Ada", "Math"), ("Grace", "Math"), ("Alan", "Logic")] {
        b.add_triple(leader, "studied", subject);
        b.add_triple(leader, "memberOf", "Pioneers");
    }
    let service = Arc::new(
        NckService::builder()
            .knowledge_graph(b.build())
            .build()
            .expect("service builds"),
    );
    serve(
        service,
        "127.0.0.1:0",
        ServeConfig {
            max_frame_bytes: MAX_FRAME,
            ..ServeConfig::default()
        },
    )
    .expect("server binds")
}

/// The liveness probe: a full round trip on a fresh connection. The
/// query names an unknown entity, so the *service* answers a typed
/// `unknown_entity` — proof the accept loop, a reader, the queue, a
/// worker and a writer are all still standing.
fn assert_server_alive(handle: &ServerHandle) {
    let mut client = ServeClient::connect(handle.addr()).expect("fresh connection");
    match client.call(&QueryRequest::entities(["Nobody"])) {
        Err(ClientError::Api(body)) => assert_eq!(body.error, "unknown_entity"),
        other => panic!("expected a typed API error, got {other:?}"),
    }
}

/// Reads one response frame raw and returns the decoded error code.
fn read_error_code(stream: &mut TcpStream) -> String {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).expect("response prefix");
    let len = u32::from_be_bytes(prefix) as usize;
    assert!(len < 1 << 20, "sane response size");
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("response payload");
    let text = std::str::from_utf8(&payload).expect("UTF-8 response");
    let value = json::parse(text).expect("JSON response");
    value
        .get("err")
        .and_then(|e| e.get("error"))
        .and_then(|c| match c {
            JsonValue::Str(s) => Some(s.clone()),
            _ => None,
        })
        .expect("typed error body")
}

/// Writes a raw frame: 4-byte big-endian length prefix + payload.
fn write_raw_frame(stream: &mut TcpStream, payload: &[u8]) {
    stream
        .write_all(&(payload.len() as u32).to_be_bytes())
        .and_then(|()| stream.write_all(payload))
        .and_then(|()| stream.flush())
        .expect("raw frame write");
}

#[test]
fn oversize_prefix_gets_typed_error_then_close() {
    let handle = toy_server();
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    // Claim 256 MiB without sending a byte of payload.
    stream
        .write_all(&(256u32 << 20).to_be_bytes())
        .expect("prefix write");
    assert_eq!(read_error_code(&mut stream), "protocol");
    // The stream cannot be resynchronized: the server closes it.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).expect("close"), 0);
    assert_server_alive(&handle);
    assert_eq!(handle.metrics().frames_malformed, 1);
    handle.shutdown();
}

#[test]
fn truncated_frame_closes_cleanly_without_wedging() {
    let handle = toy_server();
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    // Promise 100 bytes, deliver 10, hang up the write side.
    stream.write_all(&100u32.to_be_bytes()).expect("prefix");
    stream.write_all(b"ten bytes!").expect("partial payload");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    // No response is owed for half a request; the server just closes.
    let mut rest = Vec::new();
    assert_eq!(stream.read_to_end(&mut rest).expect("close"), 0);
    assert_server_alive(&handle);
    assert_eq!(handle.metrics().frames_malformed, 1);
    handle.shutdown();
}

#[test]
fn mid_request_disconnect_is_survived() {
    let handle = toy_server();
    {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream.write_all(&64u32.to_be_bytes()).expect("prefix");
        stream.write_all(b"{\"id\":").expect("fragment");
        // Dropped here: a full disconnect mid-frame, no half-close.
    }
    assert_server_alive(&handle);
    let metrics = handle.shutdown();
    assert_eq!(metrics.frames_malformed, 1);
    assert_eq!(metrics.requests_admitted, 1, "only the liveness probe");
}

/// Malformed payloads inside intact framing: the connection survives and
/// each rejection is a typed `protocol` error correlating to the sent id
/// where one can be recovered.
#[test]
fn garbage_payloads_get_typed_errors_and_the_connection_survives() {
    let handle = toy_server();
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    for payload in [
        b"not json at all".as_slice(),
        b"{\"id\":3,",                                                // invalid JSON
        b"[1,2,3]",                                                   // non-map envelope
        &[0xff, 0xfe, 0x00],                                          // invalid UTF-8
        b"{\"id\":9,\"query\":{\"entities\":[\"Ada\"]},\"bogus\":1}", // unknown envelope field
        b"{\"id\":9,\"query\":{\"entities\":[\"Ada\"],\"topk\":5}}",  // unknown query field
        b"{\"id\":9,\"query\":{\"entities\":[\"Ada\"],\"overrides\":{\"walk\":1}}}",
    ] {
        write_raw_frame(&mut stream, payload);
        assert_eq!(read_error_code(&mut stream), "protocol");
    }
    // Same connection, now a well-formed request: still served.
    let request = WireRequest {
        id: 77,
        query: QueryRequest::entities(["Nobody"]),
        deadline_ms: None,
    };
    write_raw_frame(&mut stream, json::to_string(&request).as_bytes());
    assert_eq!(read_error_code(&mut stream), "unknown_entity");

    let metrics = handle.shutdown();
    assert_eq!(metrics.frames_malformed, 7);
    assert_eq!(metrics.requests_admitted, 1);
}

/// Unknown-field rejections echo the recovered correlation id, so a
/// pipelining client can tell *which* request was malformed.
#[test]
fn recovered_ids_correlate_protocol_errors() {
    let handle = toy_server();
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    write_raw_frame(
        &mut stream,
        b"{\"id\":42,\"query\":{\"entities\":[\"Ada\"]},\"bogus\":1}",
    );
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).expect("prefix");
    let mut payload = vec![0u8; u32::from_be_bytes(prefix) as usize];
    stream.read_exact(&mut payload).expect("payload");
    let value = json::parse(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert_eq!(value.get("id"), Some(&JsonValue::UInt(42)));
    handle.shutdown();
}

/// A request frame over the server limit but within its drain budget is
/// answered with a typed `protocol` error and the connection *survives*
/// — the server drains the oversize payload to keep the stream in sync
/// instead of racing the client's write with a reset.
#[test]
fn oversize_payload_gets_typed_error_and_the_connection_survives() {
    let handle = toy_server();
    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    // ~50 KiB of entities: over the 4 KiB server limit, under the
    // client's own 16 MiB encoder limit and the server's drain budget.
    let huge = QueryRequest::entities((0..MAX_FRAME).map(|i| format!("Entity {i}")));
    match client.call(&huge) {
        Err(ClientError::Api(body)) => {
            assert_eq!(body.error, "protocol");
            assert!(body.message.contains("exceeds"), "{}", body.message);
        }
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
    // Same connection, next request: still served.
    match client.call(&QueryRequest::entities(["Nobody"])) {
        Err(ClientError::Api(body)) => assert_eq!(body.error, "unknown_entity"),
        other => panic!("expected a typed API error, got {other:?}"),
    }
    assert_server_alive(&handle);
    assert_eq!(handle.metrics().frames_malformed, 1);
    handle.shutdown();
}

/// A name strategy: 1–12 lowercase letters (the vendored proptest has
/// no regex strategies, so names are built from byte vectors).
fn name_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(b'a'..=b'z', 1..13)
        .prop_map(|bytes| String::from_utf8(bytes).expect("ascii"))
}

/// `Option<T>` strategy (the vendored proptest has no `option::of`).
fn option_of<S>(inner: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone,
{
    prop_oneof![Just(None).boxed(), inner.prop_map(Some).boxed(),]
}

proptest! {
    /// Any payload that fits the limit round-trips through the framing
    /// codec byte-for-byte.
    #[test]
    fn framing_round_trips_arbitrary_payloads(
        payload in prop::collection::vec(0u8..=255, 0..2048),
    ) {
        use notable_characteristics::serve::frame::{self, FrameEvent};
        let mut wire = Vec::new();
        frame::write_frame(&mut wire, &payload, MAX_FRAME).unwrap();
        prop_assert_eq!(wire.len(), payload.len() + 4);
        let mut cursor = std::io::Cursor::new(wire);
        match frame::read_frame(&mut cursor, MAX_FRAME, 1).unwrap() {
            FrameEvent::Frame(got) => prop_assert_eq!(got, payload),
            other => prop_assert!(false, "expected a frame, got {:?}", other),
        }
        prop_assert!(matches!(
            frame::read_frame(&mut cursor, MAX_FRAME, 1).unwrap(),
            FrameEvent::Eof
        ));
    }

    /// Arbitrary request envelopes survive encode → strict decode.
    #[test]
    fn request_envelopes_round_trip(
        id in 0u64..=u64::MAX,
        entities in prop::collection::vec(name_strategy(), 1..5),
        top in option_of(1usize..100),
        deadline_ms in option_of(1u64..10_000),
    ) {
        let mut query = QueryRequest::entities(entities);
        query.top = top;
        let request = WireRequest { id, query, deadline_ms };
        let payload = json::to_string(&request).into_bytes();
        let decoded = notable_characteristics::serve::wire::decode_request(&payload)
            .expect("strict decode accepts its own encoding");
        prop_assert_eq!(decoded, request);
    }

    /// Truncating a valid frame anywhere — prefix or payload — never
    /// yields a frame, panics, or hangs: it is a clean EOF (nothing
    /// sent), or an error.
    #[test]
    fn truncation_never_yields_a_frame(
        payload in prop::collection::vec(0u8..=255, 1..256),
        cut_fraction in 0.0f64..1.0,
    ) {
        use notable_characteristics::serve::frame::{self, FrameEvent};
        let mut wire = Vec::new();
        frame::write_frame(&mut wire, &payload, MAX_FRAME).unwrap();
        let cut = ((wire.len() as f64 * cut_fraction) as usize).min(wire.len() - 1);
        let mut cursor = std::io::Cursor::new(wire[..cut].to_vec());
        match frame::read_frame(&mut cursor, MAX_FRAME, 1) {
            Ok(FrameEvent::Eof) => prop_assert_eq!(cut, 0, "Eof only when nothing was sent"),
            Ok(other) => prop_assert!(false, "truncated input produced {:?}", other),
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        }
    }
}
