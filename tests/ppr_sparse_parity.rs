//! Property tests pinning the sparse PPR execution core to the dense
//! reference:
//!
//! - `epsilon = 0`: the frontier iteration must be **bit-for-bit**
//!   identical to the dense power iteration, on the CSR backend, the
//!   triple-store backend, and both behind [`ErasedGraph`] — any
//!   divergence breaks the engine's exact-parity contract.
//! - `epsilon > 0`: the pruned iteration must stay within the
//!   epsilon-derived L1 bound the run itself reports
//!   (`Σ_t dropped_t · c^(K−t+1)`, see `nck_core::ppr`), and within the
//!   coarse analytic bound `iterations · ε · |V|`.

#![forbid(unsafe_code)]

use notable_characteristics::core::config::PprConfig;
use notable_characteristics::core::ppr::{PersonalizedPageRank, PprWorkspace};
use notable_characteristics::core::score::ScoreVec;
use notable_characteristics::graph::builder::GraphBuilder;
use notable_characteristics::graph::{ErasedGraph, GraphAccess, KnowledgeGraph, NodeId};
use notable_characteristics::store::graph_view::to_triple_store;
use notable_characteristics::store::StoreGraph;
use proptest::prelude::*;

/// Strategy: triples over small universes plus a source pick and a
/// damping choice (0 → low damping, 1 → high).
fn cases() -> impl Strategy<Value = (Vec<(u8, u8, u8)>, u8, u8)> {
    (
        prop::collection::vec((0u8..24, 0u8..5, 0u8..24), 1..70),
        0u8..24,
        0u8..2,
    )
}

fn build(triples: &[(u8, u8, u8)]) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for &(s, p, o) in triples {
        b.add_triple(&format!("n{s}"), &format!("p{p}"), &format!("n{o}"));
    }
    // The source pick must always resolve — on the triple-store backend
    // too, which only materializes nodes that occur in a triple.
    for i in 0..24 {
        b.add_triple(&format!("n{i}"), "exists", "universe");
    }
    b.build()
}

fn config(damping_low: u8, epsilon: f64) -> PprConfig {
    PprConfig {
        damping: if damping_low == 0 { 0.2 } else { 0.8 },
        iterations: 10,
        parallel: false,
        epsilon,
    }
}

fn bits(v: &ScoreVec) -> Vec<u64> {
    v.to_dense().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The ε = 0 frontier executor is the dense power iteration, bit
    /// for bit, across all four backend configurations (`run` itself
    /// dispatches to `run_dense` at ε = 0 — `frontier_outcome` drives
    /// the frontier path directly).
    #[test]
    fn epsilon_zero_is_exact_on_every_backend((ts, src, low) in cases()) {
        let kg = build(&ts);
        let source = kg.node_by_name(&format!("n{src}")).unwrap();
        let cfg = config(low, 0.0);
        let mut ws = PprWorkspace::new();

        let csr = PersonalizedPageRank::new(&kg, cfg.clone()).unwrap();
        let want: Vec<u64> = csr.run_dense(&[source]).iter().map(|x| x.to_bits()).collect();

        // CSR, direct: frontier executor and public dispatch path.
        prop_assert_eq!(&bits(&csr.frontier_outcome(&[source], &mut ws).scores), &want);
        prop_assert_eq!(&bits(&csr.run(&[source])), &want);

        // Store backend, direct (same node interning order as the CSR:
        // `to_triple_store` preserves names, ids resolve per backend).
        let sg = StoreGraph::new(to_triple_store(&kg));
        let s_src = sg.node_by_name(&format!("n{src}")).unwrap();
        let store = PersonalizedPageRank::new(&sg, cfg.clone()).unwrap();
        let store_want: Vec<u64> =
            store.run_dense(&[s_src]).iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(&bits(&store.frontier_outcome(&[s_src], &mut ws).scores), &store_want);

        // Both backends behind runtime erasure.
        for erased in [ErasedGraph::new(kg.clone()), ErasedGraph::new(sg)] {
            let e_src = erased.node_by_name(&format!("n{src}")).unwrap();
            let ppr = PersonalizedPageRank::new(erased, cfg.clone()).unwrap();
            let want_e: Vec<u64> =
                ppr.run_dense(&[e_src]).iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(&bits(&ppr.frontier_outcome(&[e_src], &mut ws).scores), &want_e);
        }
    }

    /// ε > 0 pruning stays within both the per-run reported bound and
    /// the coarse analytic bound.
    #[test]
    fn epsilon_pruning_respects_l1_bounds((ts, src, low) in cases(), eps_exp in 1u32..4) {
        let kg = build(&ts);
        let source = kg.node_by_name(&format!("n{src}")).unwrap();
        let epsilon = 10f64.powi(-(eps_exp as i32)); // 1e-1 .. 1e-3
        let exact = PersonalizedPageRank::new(&kg, config(low, 0.0)).unwrap();
        let pruned = PersonalizedPageRank::new(&kg, config(low, epsilon)).unwrap();

        let reference = exact.run(&[source]);
        let outcome = pruned.run_outcome(&[source], &mut PprWorkspace::new());
        let dist = outcome.scores.l1_distance(&reference);

        prop_assert!(
            dist <= outcome.l1_bound + 1e-12,
            "L1 distance {} exceeds reported bound {}", dist, outcome.l1_bound
        );
        let analytic = 10.0 * epsilon * kg.num_nodes() as f64;
        prop_assert!(
            dist <= analytic,
            "L1 distance {} exceeds analytic bound {}", dist, analytic
        );
        // Drops only ever shrink entries, never invent mass.
        prop_assert!(outcome.scores.sum() <= reference.sum() + 1e-12);
        prop_assert!(outcome.dropped_mass >= 0.0);
    }

    /// Multi-source personalization keeps the same guarantees.
    #[test]
    fn multi_source_epsilon_zero_is_exact((ts, src, low) in cases(), src2 in 0u8..24) {
        let kg = build(&ts);
        let sources: Vec<NodeId> = [src, src2]
            .iter()
            .map(|i| kg.node_by_name(&format!("n{i}")).unwrap())
            .collect();
        let cfg = config(low, 0.0);
        let ppr = PersonalizedPageRank::new(&kg, cfg).unwrap();
        let dense = ppr.run_dense(&sources);
        let want: Vec<u64> = dense.iter().map(|x| x.to_bits()).collect();
        let frontier = ppr.frontier_outcome(&sources, &mut PprWorkspace::new()).scores;
        prop_assert_eq!(&bits(&frontier), &want);
        prop_assert_eq!(&bits(&ppr.run(&sources)), &want);
    }
}
