//! Property tests pinning the node-major scoring sweep to the per-label
//! path it replaces:
//!
//! - `sweep::build_all` must produce **field-for-field** identical
//!   `LabelDistributions` to a per-label `build_full` loop over the
//!   incident labels — under both instance-support policies, both
//!   cardinality binnings, inverse labels on and off, and empty
//!   contexts;
//! - the swept `FindNc` ranking must be **bit-for-bit** identical to the
//!   legacy per-label ranking on the CSR, triple-store and compact
//!   backends, sequential and worker-parallel alike.

#![forbid(unsafe_code)]

use notable_characteristics::api::rankings_equal;
use notable_characteristics::core::config::FindNcConfig;
use notable_characteristics::core::context::Context;
use notable_characteristics::core::distributions::{
    incident_labels, CardinalityBinning, InstanceSupport, LabelDistributions,
};
use notable_characteristics::core::findnc::FindNc;
use notable_characteristics::core::parallel;
use notable_characteristics::core::query::Query;
use notable_characteristics::core::sweep::{self, ScoringWorkspace};
use notable_characteristics::graph::builder::GraphBuilder;
use notable_characteristics::graph::{CompactGraph, GraphAccess, KnowledgeGraph, NodeId};
use notable_characteristics::store::graph_view::to_triple_store;
use notable_characteristics::store::StoreGraph;
use proptest::prelude::*;

/// One generated case: triples over a small universe, query picks,
/// context picks (possibly draining to an empty context), and the
/// support/binning/inverse toggles (0/1 bits — the vendored proptest
/// has no bool strategy).
type Case = (Vec<(u8, u8, u8)>, Vec<u8>, Vec<u8>, u8, u8, u8);

fn cases() -> impl Strategy<Value = Case> {
    (
        (
            prop::collection::vec((0u8..20, 0u8..5, 0u8..20), 1..60),
            prop::collection::vec(0u8..20, 1..4),
            prop::collection::vec(0u8..20, 0..8),
        ),
        (0u8..2, 0u8..2, 0u8..2),
    )
        .prop_map(|((ts, q, c), (union, raw, inv))| (ts, q, c, union, raw, inv))
}

fn build(triples: &[(u8, u8, u8)]) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for &(s, p, o) in triples {
        b.add_triple(&format!("n{s}"), &format!("p{p}"), &format!("n{o}"));
    }
    // Every query/context pick must resolve — on the triple-store backend
    // too, which only materializes nodes that occur in a triple.
    for i in 0..20 {
        b.add_triple(&format!("n{i}"), "exists", "universe");
    }
    b.build()
}

fn dedup_names(picks: &[u8]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for &i in picks {
        let name = format!("n{i}");
        if !names.contains(&name) {
            names.push(name);
        }
    }
    names
}

/// A context over the picked nodes (query nodes excluded, like the real
/// selectors), with strictly descending similarity scores.
fn context_for<G: GraphAccess>(graph: &G, picks: &[String], query: &Query) -> Context {
    let ranked: Vec<(NodeId, f64)> = picks
        .iter()
        .map(|name| graph.node_by_name(name).unwrap())
        .filter(|n| !query.nodes().contains(n))
        .enumerate()
        .map(|(rank, n)| (n, 1.0 / (rank + 1) as f64))
        .collect();
    Context::from_ranked(ranked)
}

/// Swept distributions vs the per-label loop, on one backend.
fn assert_distribution_parity<G: GraphAccess>(
    graph: &G,
    query_names: &[String],
    context_names: &[String],
    support: InstanceSupport,
    binning: CardinalityBinning,
    include_inverse: bool,
) {
    let query = Query::by_names(graph, query_names.iter().map(String::as_str)).unwrap();
    let context = context_for(graph, context_names, &query);
    let mut ws = ScoringWorkspace::new();
    let swept = sweep::build_all(
        graph,
        &query,
        &context,
        support,
        binning,
        include_inverse,
        &mut ws,
    );
    let labels = incident_labels(graph, &query, &context, include_inverse);
    prop_assert_eq!(
        swept.iter().map(|d| d.label).collect::<Vec<_>>(),
        labels.clone(),
        "the sweep must cover exactly the incident labels, in label order"
    );
    for (dists, label) in swept.iter().zip(labels) {
        let want = LabelDistributions::build_full(graph, &query, &context, label, support, binning);
        prop_assert_eq!(
            dists,
            &want,
            "label {:?} diverged under {:?}/{:?} inverse={}",
            label,
            support,
            binning,
            include_inverse
        );
    }
}

/// Swept vs legacy `FindNc` ranking, bit for bit, on one backend.
fn assert_ranking_parity<G: GraphAccess + Sync>(
    graph: &G,
    query_names: &[String],
    context_names: &[String],
    support: InstanceSupport,
    binning: CardinalityBinning,
    include_inverse: bool,
) {
    let query = Query::by_names(graph, query_names.iter().map(String::as_str)).unwrap();
    let context = context_for(graph, context_names, &query);
    if context.is_empty() {
        // An empty context is a selection error on both paths (FindNC
        // refuses to score against no evidence); distribution-level
        // parity for empty contexts is covered by the sibling test.
        return;
    }
    let config = |sweep: bool| FindNcConfig {
        instance_support: support,
        card_binning: binning,
        include_inverse_labels: include_inverse,
        score_sweep: sweep,
        ..FindNcConfig::default()
    };
    let swept = FindNc::new(config(true))
        .discover_with_context(graph, &query, &context)
        .unwrap();
    let legacy = FindNc::new(config(false))
        .discover_with_context(graph, &query, &context)
        .unwrap();
    prop_assert!(
        rankings_equal(&swept, &legacy),
        "swept and legacy rankings diverged: {:?} vs {:?}",
        swept.characteristics,
        legacy.characteristics
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `build_all` equals the per-label `build_full` loop field for
    /// field on all three backends (each resolved in its own id space),
    /// across every support/binning/inverse combination the generator
    /// produces — including empty contexts.
    #[test]
    fn swept_distributions_match_per_label_build((ts, q, c, union, raw, inv) in cases()) {
        let (union, raw, inv) = (union == 1, raw == 1, inv == 1);
        let kg = build(&ts);
        let query_names = dedup_names(&q);
        let context_names = dedup_names(&c);
        let support = if union { InstanceSupport::Union } else { InstanceSupport::ContextOnly };
        let binning = if raw { CardinalityBinning::Raw } else { CardinalityBinning::Log2 };
        assert_distribution_parity(
            &StoreGraph::new(to_triple_store(&kg)),
            &query_names, &context_names, support, binning, inv,
        );
        assert_distribution_parity(
            &CompactGraph::from_graph(&kg),
            &query_names, &context_names, support, binning, inv,
        );
        assert_distribution_parity(&kg, &query_names, &context_names, support, binning, inv);
    }

    /// The full scored ranking — δ, significances, trigger order — is
    /// bit-for-bit identical between the swept (worker-parallel) and
    /// legacy (sequential per-label) paths on every backend.
    #[test]
    fn swept_rankings_match_legacy_on_every_backend((ts, q, c, union, raw, inv) in cases()) {
        let (union, raw, inv) = (union == 1, raw == 1, inv == 1);
        let kg = build(&ts);
        let query_names = dedup_names(&q);
        let context_names = dedup_names(&c);
        let support = if union { InstanceSupport::Union } else { InstanceSupport::ContextOnly };
        let binning = if raw { CardinalityBinning::Raw } else { CardinalityBinning::Log2 };
        assert_ranking_parity(
            &StoreGraph::new(to_triple_store(&kg)),
            &query_names, &context_names, support, binning, inv,
        );
        assert_ranking_parity(
            &CompactGraph::from_graph(&kg),
            &query_names, &context_names, support, binning, inv,
        );
        assert_ranking_parity(&kg, &query_names, &context_names, support, binning, inv);
    }

    /// The worker count is invisible in the output: capping the process
    /// to one worker (inline scoring) produces the same bits as the
    /// uncapped parallel fan-out.
    #[test]
    fn parallel_scoring_is_answer_invariant((ts, q, c, union, raw, inv) in cases()) {
        let (union, raw, inv) = (union == 1, raw == 1, inv == 1);
        let kg = build(&ts);
        let query_names = dedup_names(&q);
        let context_names = dedup_names(&c);
        let query = Query::by_names(&kg, query_names.iter().map(String::as_str)).unwrap();
        let context = context_for(&kg, &context_names, &query);
        if context.is_empty() {
            continue; // nothing to score; the macro loops per case
        }
        let config = FindNcConfig {
            instance_support: if union { InstanceSupport::Union } else { InstanceSupport::ContextOnly },
            card_binning: if raw { CardinalityBinning::Raw } else { CardinalityBinning::Log2 },
            include_inverse_labels: inv,
            score_sweep: true,
            ..FindNcConfig::default()
        };
        let findnc = FindNc::new(config);
        let wide = findnc.discover_with_context(&kg, &query, &context).unwrap();
        let base = parallel::thread_cap();
        parallel::set_thread_cap(Some(1));
        let narrow = findnc.discover_with_context(&kg, &query, &context);
        parallel::set_thread_cap(base);
        prop_assert!(
            rankings_equal(&wide, &narrow.unwrap()),
            "a one-worker cap changed the swept ranking"
        );
    }
}
