//! Engine cache correctness: batched execution through `nck-engine` must
//! be id-for-id identical to sequential `FindNc::discover` on **both**
//! graph backends, including under forced cache eviction.

#![forbid(unsafe_code)]

use notable_characteristics::core::config::{ContextRwConfig, FindNcConfig, PathMiningConfig};
use notable_characteristics::core::context::TypeFilter;
use notable_characteristics::core::findnc::{FindNc, SearchResult};
use notable_characteristics::core::query::Query;
use notable_characteristics::datagen::{generate, DomainId, GeneratorConfig};
use notable_characteristics::engine::{EngineConfig, QueryEngine};
use notable_characteristics::graph::GraphAccess;
use notable_characteristics::store::graph_view::{to_knowledge_graph, to_triple_store};
use notable_characteristics::store::StoreGraph;

fn pipeline_config() -> FindNcConfig {
    FindNcConfig {
        context: ContextRwConfig {
            mining: PathMiningConfig {
                walks: 6_000,
                max_length: 4,
                seed: 99,
                parallel: true,
            },
            num_metapaths: 5,
            type_filter: TypeFilter::CommonAncestor,
            max_endpoint_fraction: 0.25,
        },
        context_size: 30,
        ..FindNcConfig::default()
    }
}

/// A repeated-seed workload over the actors domain: 4 distinct seed
/// pairs anchored on the most prominent actor, each repeated twice.
fn workload<G: GraphAccess>(graph: &G, names: &[Vec<String>]) -> Vec<Query> {
    let mut out = Vec::new();
    for _ in 0..2 {
        for q in names {
            out.push(Query::by_names(graph, q).expect("workload query resolves"));
        }
    }
    out
}

fn assert_identical(label: &str, a: &SearchResult, b: &SearchResult) {
    assert_eq!(
        a.context.ranked(),
        b.context.ranked(),
        "{label}: contexts must agree bit for bit"
    );
    assert_eq!(a.characteristics.len(), b.characteristics.len(), "{label}");
    for (x, y) in a.characteristics.iter().zip(&b.characteristics) {
        assert_eq!(x.label, y.label, "{label}: label order");
        assert_eq!(x.score, y.score, "{label}: scores");
        assert_eq!(x.significance, y.significance, "{label}: significance");
        assert_eq!(x.inst_significance, y.inst_significance, "{label}");
        assert_eq!(x.card_significance, y.card_significance, "{label}");
    }
}

/// Runs the workload through an engine and a sequential loop over the
/// same backend and asserts exact agreement; returns the engine for
/// further inspection.
fn check_backend<'g, G: GraphAccess + Sync>(
    label: &str,
    graph: &'g G,
    names: &[Vec<String>],
    config: EngineConfig,
) -> QueryEngine<&'g G> {
    let queries = workload(graph, names);
    let engine = QueryEngine::new(graph, config).expect("engine builds");
    let batched = engine.run_batch(&queries).expect("batched run");
    let findnc = FindNc::new(pipeline_config());
    for (q, b) in queries.iter().zip(&batched) {
        let sequential = findnc.discover(graph, q).expect("sequential run");
        assert_identical(label, b, &sequential);
    }
    engine
}

fn seed_pairs(dataset: &notable_characteristics::datagen::Dataset) -> Vec<Vec<String>> {
    let members = &dataset
        .domain(DomainId::Actors)
        .expect("actors domain")
        .members;
    (0..4)
        .map(|i| {
            vec![
                dataset.graph.node_name(members[0]).to_owned(),
                dataset.graph.node_name(members[1 + i]).to_owned(),
            ]
        })
        .collect()
}

#[test]
fn engine_matches_sequential_on_both_backends() {
    let dataset = generate(&GeneratorConfig::tiny(13));
    let names = seed_pairs(&dataset);
    let store = to_triple_store(&dataset.graph);
    let kg = to_knowledge_graph(&store);
    let sg = StoreGraph::new(store);

    let config = EngineConfig {
        findnc: pipeline_config(),
        ..EngineConfig::default()
    };
    let kg_engine = check_backend("csr", &kg, &names, config.clone());
    let sg_engine = check_backend("store", &sg, &names, config);

    // The batch dedups the repeated half of the workload on both.
    assert_eq!(kg_engine.stats().deduplicated, 4);
    assert_eq!(sg_engine.stats().deduplicated, 4);
    // Batch warming faulted the seeds' predicate runs into the store's
    // shared per-predicate cache before execution.
    assert!(
        sg.cached_runs() > 0,
        "warm_predicate must populate the store's run cache"
    );

    // And the two backends agree with each other, id for id.
    let kq = workload(&kg, &names);
    let sq = workload(&sg, &names);
    let kr = kg_engine.run_batch(&kq).unwrap();
    let sr = sg_engine.run_batch(&sq).unwrap();
    for (a, b) in kr.iter().zip(&sr) {
        assert_identical("cross-backend", a, b);
    }
}

/// The runtime-erasure layer is exact: `ErasedGraph(csr)` and
/// `ErasedGraph(store)` answer id-for-id identically to their generic
/// counterparts — through the engine, against the sequential baseline,
/// and across each other.
#[test]
fn erased_backends_match_generic_backends() {
    use notable_characteristics::graph::ErasedGraph;
    use std::sync::Arc;

    let dataset = generate(&GeneratorConfig::tiny(13));
    let names = seed_pairs(&dataset);
    let store = Arc::new(to_triple_store(&dataset.graph));
    let kg = to_knowledge_graph(&store);
    let sg = Arc::new(StoreGraph::new(Arc::clone(&store)));
    let erased_kg = ErasedGraph::new(kg.clone());
    let erased_sg = ErasedGraph::from_arc(Arc::clone(&sg));

    let config = EngineConfig {
        findnc: pipeline_config(),
        ..EngineConfig::default()
    };

    // Erased engines vs sequential runs *over the erased graphs*.
    let ekg_engine = check_backend("erased/csr", &erased_kg, &names, config.clone());
    let esg_engine = check_backend("erased/store", &erased_sg, &names, config.clone());

    // Erasure forwards warm_predicate: batch warming must still fault the
    // store's shared per-predicate run cache.
    assert!(
        sg.cached_runs() > 0,
        "erased warm_predicate must reach the store's run cache"
    );

    // Erased vs generic, id for id, on both backends.
    let kg_engine = check_backend("csr", &kg, &names, config.clone());
    let sg_engine = check_backend("store", &*sg, &names, config);
    let queries_kg = workload(&kg, &names);
    let generic_kg = kg_engine.run_batch(&queries_kg).unwrap();
    let erased_kg_results = ekg_engine.run_batch(&workload(&erased_kg, &names)).unwrap();
    for (a, b) in generic_kg.iter().zip(&erased_kg_results) {
        assert_identical("erased-vs-generic/csr", a, b);
    }
    let generic_sg = sg_engine.run_batch(&workload(&*sg, &names)).unwrap();
    let erased_sg_results = esg_engine.run_batch(&workload(&erased_sg, &names)).unwrap();
    for (a, b) in generic_sg.iter().zip(&erased_sg_results) {
        assert_identical("erased-vs-generic/store", a, b);
    }
    // And the two erased backends agree with each other.
    for (a, b) in erased_kg_results.iter().zip(&erased_sg_results) {
        assert_identical("erased-cross-backend", a, b);
    }
}

#[test]
fn eviction_under_pressure_keeps_results_exact() {
    let dataset = generate(&GeneratorConfig::tiny(13));
    let names = seed_pairs(&dataset);
    let store = to_triple_store(&dataset.graph);
    let kg = to_knowledge_graph(&store);
    let sg = StoreGraph::new(store);

    // Caches one entry deep: every distinct query evicts its
    // predecessor, so the second replay recomputes everything.
    let tight = EngineConfig {
        findnc: pipeline_config(),
        ppr_cache_entries: 1,
        context_cache_entries: 1,
        result_cache_entries: 1,
        ..EngineConfig::default()
    };
    let kg_engine = check_backend("csr/tight", &kg, &names, tight.clone());
    assert!(
        kg_engine.stats().result.evictions > 0,
        "one-deep caches must evict under an 8-query workload"
    );
    check_backend("store/tight", &sg, &names, tight);
}
