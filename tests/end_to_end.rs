//! Workspace integration tests: the full stack, from triple store to
//! notable characteristics, exercised together.

#![forbid(unsafe_code)]

use notable_characteristics::core::config::{ContextRwConfig, FindNcConfig, PathMiningConfig};
use notable_characteristics::core::context::TypeFilter;
use notable_characteristics::datagen::{generate, GeneratorConfig};
use notable_characteristics::prelude::*;
use notable_characteristics::store::graph_view::to_knowledge_graph;
use notable_characteristics::store::TripleStore;

/// Store → graph → FindNC: a dataset loaded through the triple-store
/// substrate produces the same discoveries as one built directly.
#[test]
fn store_backed_pipeline_matches_direct_graph() {
    // Direct construction.
    let mut b = GraphBuilder::new();
    b.add_triple("q", "quirk", "weird");
    for i in 0..25 {
        let n = format!("c{i}");
        b.add_triple(&n, "quirk", if i == 0 { "weird" } else { "normal" });
        b.add_triple(&n, "usual", "common");
    }
    b.add_triple("q", "usual", "common");
    let direct = b.build();

    // Store-backed construction of the same facts.
    let mut store = TripleStore::new();
    store.insert_iris("q", "quirk", "weird");
    store.insert_iris("q", "usual", "common");
    for i in 0..25 {
        let n = format!("c{i}");
        store.insert_iris(&n, "quirk", if i == 0 { "weird" } else { "normal" });
        store.insert_iris(&n, "usual", "common");
    }
    let via_store = to_knowledge_graph(&store);
    assert_eq!(via_store.num_logical_edges(), direct.num_logical_edges());

    for graph in [&direct, &via_store] {
        let query = Query::by_names(graph, ["q"]).unwrap();
        let names: Vec<String> = (0..25).map(|i| format!("c{i}")).collect();
        let context = Context::from_names(graph, &names).unwrap();
        let result = FindNc::new(FindNcConfig::default())
            .discover_with_context(graph, &query, &context)
            .unwrap();
        let quirk = result.characteristic("quirk", graph).unwrap();
        assert!(quirk.notable(), "rare value must be notable");
        let usual = result.characteristic("usual", graph).unwrap();
        assert!(!usual.notable(), "shared value must not be notable");
    }
}

/// Graph TSV round trip preserves discovery results.
#[test]
fn tsv_round_trip_preserves_discoveries() {
    let dataset = generate(&GeneratorConfig::tiny(5));
    let mut buf = Vec::new();
    notable_characteristics::graph::io::write_tsv(&dataset.graph, &mut buf).unwrap();
    let reloaded = notable_characteristics::graph::io::read_tsv(&buf[..]).unwrap();
    assert_eq!(
        reloaded.num_logical_edges(),
        dataset.graph.num_logical_edges()
    );
    // Merkel's planted facts survive the round trip.
    let merkel = reloaded.require_node("Angela Merkel").unwrap();
    let has_child = reloaded.labels().get("hasChild").unwrap();
    assert_eq!(reloaded.degree_with_label(merkel, has_child), 0);
    let studied = reloaded.labels().get("studied").unwrap();
    let subjects = reloaded.neighbors_with_label(merkel, studied);
    assert_eq!(subjects.len(), 1);
    assert_eq!(reloaded.node_name(subjects[0]), "Physics");
}

/// The full mined pipeline runs end to end on the synthetic dataset and
/// produces a plausible, explained result.
#[test]
fn mined_pipeline_produces_explained_results() {
    let dataset = generate(&GeneratorConfig::tiny(42));
    let graph = &dataset.graph;
    let spec = notable_characteristics::datagen::queries::actors5_query();
    let query = Query::new(graph, dataset.query_nodes(&spec)).unwrap();
    let findnc = FindNc::new(FindNcConfig {
        context: ContextRwConfig {
            mining: PathMiningConfig {
                walks: 30_000,
                max_length: 5,
                seed: 4,
                parallel: true,
            },
            num_metapaths: 5,
            type_filter: TypeFilter::CommonAncestor,
            max_endpoint_fraction: 0.25,
        },
        context_size: 50,
        ..FindNcConfig::default()
    });
    let result = findnc.discover(graph, &query).unwrap();
    assert!(!result.context.is_empty());
    assert!(!result.characteristics.is_empty());
    // Scores are sorted and the report renders every label.
    for w in result.characteristics.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    let text = notable_characteristics::core::explain::report(graph, &result, query.len());
    for ch in &result.characteristics {
        assert!(text.contains(graph.label_name(ch.label)));
    }
}

/// Determinism across the whole stack: same seed, same results.
#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let dataset = generate(&GeneratorConfig::tiny(11));
        let graph = &dataset.graph;
        let spec = notable_characteristics::datagen::queries::actors5_query();
        let query = Query::new(graph, dataset.query_nodes(&spec)).unwrap();
        let findnc = FindNc::new(FindNcConfig {
            context: ContextRwConfig {
                mining: PathMiningConfig {
                    walks: 10_000,
                    max_length: 4,
                    seed: 9,
                    parallel: false,
                },
                num_metapaths: 5,
                type_filter: TypeFilter::CommonAncestor,
                max_endpoint_fraction: 0.25,
            },
            context_size: 40,
            ..FindNcConfig::default()
        });
        let result = findnc.discover(graph, &query).unwrap();
        result
            .characteristics
            .iter()
            .map(|c| (graph.label_name(c.label).to_owned(), c.score))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// The λ selectors disagree the way the paper says they do: the baseline's
/// context contains close-but-irrelevant neighbors that ContextRW skips.
#[test]
fn selectors_disagree_on_context_composition() {
    let dataset = generate(&GeneratorConfig::tiny(42));
    let graph = &dataset.graph;
    let spec = notable_characteristics::datagen::queries::actors5_query();
    let query = Query::new(graph, dataset.query_nodes(&spec)).unwrap();
    let crw = ContextRw::new(ContextRwConfig {
        mining: PathMiningConfig {
            walks: 30_000,
            max_length: 5,
            seed: 21,
            parallel: true,
        },
        num_metapaths: 5,
        type_filter: TypeFilter::CommonAncestor,
        max_endpoint_fraction: 0.25,
    });
    let rw = RandomWalkSelector::paper_experiment();
    use notable_characteristics::core::context::ContextSelector;
    let c1 = crw.select(graph, &query, 60).unwrap();
    let c2 = rw.select(graph, &query, 60).unwrap();
    let overlap = c1.node_set().intersection(&c2.node_set()).count();
    assert!(
        overlap < 60,
        "the two selectors must not return identical contexts"
    );
}

// ---------------------------------------------------------------------------
// Backend parity: the same pipeline over the materialized CSR graph and the
// index-backed StoreGraph must rank the same notable characteristics.
// ---------------------------------------------------------------------------

use notable_characteristics::graph::GraphAccess;
use notable_characteristics::store::graph_view::{
    to_triple_store, SUBTYPE_PREDICATE, TYPE_PREDICATE,
};
use notable_characteristics::store::StoreGraph;

/// `(label name, δ score, significance)` rows of a projected ranking.
type NamedRanking = Vec<(String, f64, Option<f64>)>;

/// Runs FindNC over a backend and projects the result onto names.
fn ranked_by_name<G: GraphAccess + Sync>(
    graph: &G,
    query_names: &[String],
    config: FindNcConfig,
) -> (Vec<String>, NamedRanking) {
    let query = Query::by_names(graph, query_names).expect("query resolves");
    let result = FindNc::new(config)
        .discover(graph, &query)
        .expect("discovery runs");
    let context = result
        .context
        .nodes()
        .map(|n| graph.node_name(n).to_owned())
        .collect();
    let ranked = result
        .characteristics
        .iter()
        .map(|c| {
            (
                graph.label_name(c.label).to_owned(),
                c.score,
                c.significance,
            )
        })
        .collect();
    (context, ranked)
}

fn assert_rankings_match(
    (ctx_a, ranked_a): &(Vec<String>, NamedRanking),
    (ctx_b, ranked_b): &(Vec<String>, NamedRanking),
) {
    assert_eq!(ctx_a, ctx_b, "context composition must match");
    assert_eq!(ranked_a.len(), ranked_b.len());
    for ((la, sa, pa), (lb, sb, pb)) in ranked_a.iter().zip(ranked_b) {
        assert_eq!(la, lb, "label order must match");
        assert!((sa - sb).abs() < 1e-9, "{la}: scores {sa} vs {sb}");
        match (pa, pb) {
            (Some(pa), Some(pb)) => {
                assert!((pa - pb).abs() < 1e-9, "{la}: significance {pa} vs {pb}")
            }
            (None, None) => {}
            other => panic!("{la}: significance presence differs: {other:?}"),
        }
    }
}

/// Figure-1 parity: fixed-context discrimination and the full mined
/// pipeline agree across backends on the paper's example graph.
#[test]
fn backends_rank_identically_on_figure1() {
    let mut store = TripleStore::new();
    store.insert_iris("Merkel", "studied", "Physics");
    for p in ["Putin", "Renzi", "Hollande"] {
        store.insert_iris(p, "studied", "Law");
    }
    for (p, c) in [
        ("Obama", "Malia"),
        ("Putin", "Mariya"),
        ("Renzi", "Ester"),
        ("Renzi", "Emanuele"),
        ("Hollande", "Thomas"),
        ("Hollande", "Clemence"),
        ("Hollande", "Flora"),
        ("Hollande", "Julien"),
    ] {
        store.insert_iris(p, "hasChild", c);
    }
    // Extra leaders so the multinomial test has context mass, plus a
    // shared forum so PathMining finds query→context metapaths.
    for i in 0..22 {
        let n = format!("leader{i}");
        store.insert_iris(&n, "studied", "Law");
        store.insert_iris(&n, "hasChild", &format!("child{i}"));
        store.insert_iris(&n, TYPE_PREDICATE, "politician");
        store.insert_iris(&n, "memberOf", "G20");
    }
    for p in ["Merkel", "Obama", "Putin", "Renzi", "Hollande"] {
        store.insert_iris(p, TYPE_PREDICATE, "politician");
        store.insert_iris(p, "memberOf", "G20");
    }
    store.insert_iris("politician", SUBTYPE_PREDICATE, "person");

    let kg = to_knowledge_graph(&store);
    let sg = StoreGraph::new(store);

    // Fixed-context discrimination (no sampling in context selection).
    let query_names = ["Merkel".to_owned(), "Obama".to_owned()];
    let mut context_names: Vec<String> = ["Putin", "Renzi", "Hollande"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    context_names.extend((0..22).map(|i| format!("leader{i}")));
    let config = FindNcConfig::default();
    let kq = Query::by_names(&kg, &query_names).unwrap();
    let kc = Context::from_names(&kg, &context_names).unwrap();
    let kr = FindNc::new(config.clone())
        .discover_with_context(&kg, &kq, &kc)
        .unwrap();
    let sq = Query::by_names(&sg, &query_names).unwrap();
    let sc = Context::from_names(&sg, &context_names).unwrap();
    let sr = FindNc::new(config)
        .discover_with_context(&sg, &sq, &sc)
        .unwrap();
    let project = |r: &SearchResult, g: &dyn Fn(EdgeLabelId) -> String| {
        r.characteristics
            .iter()
            .map(|c| (g(c.label), c.score, c.significance))
            .collect::<Vec<_>>()
    };
    let ka = project(&kr, &|l| kg.label_name(l).to_owned());
    let sa = project(&sr, &|l| GraphAccess::label_name(&sg, l).to_owned());
    assert_rankings_match(&(vec![], ka.clone()), &(vec![], sa.clone()));
    assert!(
        ka.iter().any(|(l, s, _)| l == "studied" && *s > 0.0),
        "Figure-1 headline must be notable on both backends: {ka:?}"
    );

    // Full mined pipeline (PathMining + ContextRW + discrimination).
    let config = FindNcConfig {
        context: ContextRwConfig {
            mining: PathMiningConfig {
                walks: 8_000,
                max_length: 4,
                seed: 7,
                parallel: true,
            },
            num_metapaths: 5,
            type_filter: TypeFilter::CommonAncestor,
            max_endpoint_fraction: 1.0,
        },
        context_size: 20,
        ..FindNcConfig::default()
    };
    let a = ranked_by_name(&kg, &query_names, config.clone());
    let b = ranked_by_name(&sg, &query_names, config);
    assert!(!a.0.is_empty(), "mined context must not be empty");
    assert_rankings_match(&a, &b);
}

/// Generated-dataset parity: the full seeded pipeline agrees across
/// backends on an nck-datagen graph loaded through the store.
#[test]
fn backends_rank_identically_on_generated_dataset() {
    let dataset = generate(&GeneratorConfig::tiny(13));
    let spec = notable_characteristics::datagen::queries::actors5_query();
    let query_names: Vec<String> = dataset
        .query_nodes(&spec)
        .into_iter()
        .map(|n| dataset.graph.node_name(n).to_owned())
        .collect();

    let store = to_triple_store(&dataset.graph);
    let kg = to_knowledge_graph(&store);
    let sg = StoreGraph::new(store);
    assert_eq!(
        GraphAccess::num_nodes(&sg),
        KnowledgeGraph::num_nodes(&kg),
        "backends must agree on the node universe"
    );

    let config = FindNcConfig {
        context: ContextRwConfig {
            mining: PathMiningConfig {
                walks: 12_000,
                max_length: 4,
                seed: 99,
                parallel: true,
            },
            num_metapaths: 5,
            type_filter: TypeFilter::CommonAncestor,
            max_endpoint_fraction: 0.25,
        },
        context_size: 40,
        ..FindNcConfig::default()
    };
    let a = ranked_by_name(&kg, &query_names, config.clone());
    let b = ranked_by_name(&sg, &query_names, config);
    assert!(!a.0.is_empty(), "mined context must not be empty");
    assert!(!a.1.is_empty(), "characteristics must be scored");
    assert_rankings_match(&a, &b);
}
