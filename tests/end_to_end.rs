//! Workspace integration tests: the full stack, from triple store to
//! notable characteristics, exercised together.

use notable_characteristics::core::config::{
    ContextRwConfig, FindNcConfig, PathMiningConfig,
};
use notable_characteristics::core::context::TypeFilter;
use notable_characteristics::datagen::{generate, GeneratorConfig};
use notable_characteristics::prelude::*;
use notable_characteristics::store::graph_view::to_knowledge_graph;
use notable_characteristics::store::TripleStore;

/// Store → graph → FindNC: a dataset loaded through the triple-store
/// substrate produces the same discoveries as one built directly.
#[test]
fn store_backed_pipeline_matches_direct_graph() {
    // Direct construction.
    let mut b = GraphBuilder::new();
    b.add_triple("q", "quirk", "weird");
    for i in 0..25 {
        let n = format!("c{i}");
        b.add_triple(&n, "quirk", if i == 0 { "weird" } else { "normal" });
        b.add_triple(&n, "usual", "common");
    }
    b.add_triple("q", "usual", "common");
    let direct = b.build();

    // Store-backed construction of the same facts.
    let mut store = TripleStore::new();
    store.insert_iris("q", "quirk", "weird");
    store.insert_iris("q", "usual", "common");
    for i in 0..25 {
        let n = format!("c{i}");
        store.insert_iris(&n, "quirk", if i == 0 { "weird" } else { "normal" });
        store.insert_iris(&n, "usual", "common");
    }
    let via_store = to_knowledge_graph(&store);
    assert_eq!(via_store.num_logical_edges(), direct.num_logical_edges());

    for graph in [&direct, &via_store] {
        let query = Query::by_names(graph, ["q"]).unwrap();
        let names: Vec<String> = (0..25).map(|i| format!("c{i}")).collect();
        let context = Context::from_names(graph, &names).unwrap();
        let result = FindNc::new(FindNcConfig::default())
            .discover_with_context(graph, &query, &context)
            .unwrap();
        let quirk = result.characteristic("quirk", graph).unwrap();
        assert!(quirk.notable(), "rare value must be notable");
        let usual = result.characteristic("usual", graph).unwrap();
        assert!(!usual.notable(), "shared value must not be notable");
    }
}

/// Graph TSV round trip preserves discovery results.
#[test]
fn tsv_round_trip_preserves_discoveries() {
    let dataset = generate(&GeneratorConfig::tiny(5));
    let mut buf = Vec::new();
    notable_characteristics::graph::io::write_tsv(&dataset.graph, &mut buf).unwrap();
    let reloaded = notable_characteristics::graph::io::read_tsv(&buf[..]).unwrap();
    assert_eq!(
        reloaded.num_logical_edges(),
        dataset.graph.num_logical_edges()
    );
    // Merkel's planted facts survive the round trip.
    let merkel = reloaded.require_node("Angela Merkel").unwrap();
    let has_child = reloaded.labels().get("hasChild").unwrap();
    assert_eq!(reloaded.degree_with_label(merkel, has_child), 0);
    let studied = reloaded.labels().get("studied").unwrap();
    let subjects = reloaded.neighbors_with_label(merkel, studied);
    assert_eq!(subjects.len(), 1);
    assert_eq!(reloaded.node_name(subjects[0]), "Physics");
}

/// The full mined pipeline runs end to end on the synthetic dataset and
/// produces a plausible, explained result.
#[test]
fn mined_pipeline_produces_explained_results() {
    let dataset = generate(&GeneratorConfig::tiny(42));
    let graph = &dataset.graph;
    let spec = notable_characteristics::datagen::queries::actors5_query();
    let query = Query::new(graph, dataset.query_nodes(&spec)).unwrap();
    let findnc = FindNc::new(FindNcConfig {
        context: ContextRwConfig {
            mining: PathMiningConfig {
                walks: 30_000,
                max_length: 5,
                seed: 4,
                parallel: true,
            },
            num_metapaths: 5,
            type_filter: TypeFilter::CommonAncestor,
            max_endpoint_fraction: 0.25,
        },
        context_size: 50,
        ..FindNcConfig::default()
    });
    let result = findnc.discover(graph, &query).unwrap();
    assert!(!result.context.is_empty());
    assert!(!result.characteristics.is_empty());
    // Scores are sorted and the report renders every label.
    for w in result.characteristics.windows(2) {
        assert!(w[0].score >= w[1].score);
    }
    let text =
        notable_characteristics::core::explain::report(graph, &result, query.len());
    for ch in &result.characteristics {
        assert!(text.contains(graph.label_name(ch.label)));
    }
}

/// Determinism across the whole stack: same seed, same results.
#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let dataset = generate(&GeneratorConfig::tiny(11));
        let graph = &dataset.graph;
        let spec = notable_characteristics::datagen::queries::actors5_query();
        let query = Query::new(graph, dataset.query_nodes(&spec)).unwrap();
        let findnc = FindNc::new(FindNcConfig {
            context: ContextRwConfig {
                mining: PathMiningConfig {
                    walks: 10_000,
                    max_length: 4,
                    seed: 9,
                    parallel: false,
                },
                num_metapaths: 5,
                type_filter: TypeFilter::CommonAncestor,
                max_endpoint_fraction: 0.25,
            },
            context_size: 40,
            ..FindNcConfig::default()
        });
        let result = findnc.discover(graph, &query).unwrap();
        result
            .characteristics
            .iter()
            .map(|c| (graph.label_name(c.label).to_owned(), c.score))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// The λ selectors disagree the way the paper says they do: the baseline's
/// context contains close-but-irrelevant neighbors that ContextRW skips.
#[test]
fn selectors_disagree_on_context_composition() {
    let dataset = generate(&GeneratorConfig::tiny(42));
    let graph = &dataset.graph;
    let spec = notable_characteristics::datagen::queries::actors5_query();
    let query = Query::new(graph, dataset.query_nodes(&spec)).unwrap();
    let crw = ContextRw::new(ContextRwConfig {
        mining: PathMiningConfig {
            walks: 30_000,
            max_length: 5,
            seed: 21,
            parallel: true,
        },
        num_metapaths: 5,
        type_filter: TypeFilter::CommonAncestor,
        max_endpoint_fraction: 0.25,
    });
    let rw = RandomWalkSelector::paper_experiment();
    use notable_characteristics::core::context::ContextSelector;
    let c1 = crw.select(graph, &query, 60).unwrap();
    let c2 = rw.select(graph, &query, 60).unwrap();
    let overlap = c1
        .node_set()
        .intersection(&c2.node_set())
        .count();
    assert!(
        overlap < 60,
        "the two selectors must not return identical contexts"
    );
}
