//! Concurrent serving correctness: many client threads hammering one
//! shared service/engine must produce responses **id-for-id identical**
//! to fresh sequential runs — on both backends, under both selectors,
//! and under pathological one-entry-per-shard cache pressure.
//!
//! The query mix deliberately overlaps: exact repeats (result-cache /
//! single-flight territory), distinct queries sharing a seed (PPR-cache
//! territory in RandomWalk mode), and fully distinct queries. Each
//! thread walks the mix starting at its own rotation, so at any moment
//! different threads are racing different keys through the sharded
//! caches and flight slots.

#![forbid(unsafe_code)]

use notable_characteristics::api::{Backend, NckService, QueryRequest};
use notable_characteristics::core::config::{
    ContextRwConfig, FindNcConfig, PathMiningConfig, PprConfig, RandomWalkConfig,
};
use notable_characteristics::core::context::TypeFilter;
use notable_characteristics::core::findnc::{FindNc, SearchResult};
use notable_characteristics::core::ppr::RandomWalkSelector;
use notable_characteristics::core::query::Query;
use notable_characteristics::datagen::{generate, DomainId, GeneratorConfig};
use notable_characteristics::engine::{EngineConfig, QueryEngine, SelectorMode};
use notable_characteristics::graph::GraphAccess;
use notable_characteristics::store::graph_view::to_triple_store;
use std::sync::Arc;

const THREADS: usize = 8;
const ROUNDS: usize = 2;

fn pipeline_config() -> FindNcConfig {
    FindNcConfig {
        context: ContextRwConfig {
            mining: PathMiningConfig {
                walks: 4_000,
                max_length: 4,
                seed: 99,
                parallel: true,
            },
            num_metapaths: 5,
            type_filter: TypeFilter::CommonAncestor,
            max_endpoint_fraction: 0.25,
        },
        context_size: 30,
        ..FindNcConfig::default()
    }
}

fn engine_config() -> EngineConfig {
    EngineConfig {
        findnc: pipeline_config(),
        ..EngineConfig::default()
    }
}

/// Caches one entry per shard: 4 stripes, 4 entries each cache, so
/// every shard holds exactly one entry and concurrent distinct keys
/// evict each other constantly.
fn one_entry_per_shard_config() -> EngineConfig {
    EngineConfig {
        findnc: pipeline_config(),
        cache_shards: 4,
        ppr_cache_entries: 4,
        context_cache_entries: 4,
        result_cache_entries: 4,
        ..EngineConfig::default()
    }
}

/// The overlapping mix: 4 distinct seed pairs anchored on the most
/// prominent actor (shared seeds), plus exact repeats of the first two.
fn query_mix(dataset: &notable_characteristics::datagen::Dataset) -> Vec<Vec<String>> {
    let members = &dataset
        .domain(DomainId::Actors)
        .expect("actors domain")
        .members;
    let name = |i: usize| dataset.graph.node_name(members[i]).to_owned();
    let mut mix: Vec<Vec<String>> = (0..4).map(|i| vec![name(0), name(1 + i)]).collect();
    mix.push(mix[0].clone()); // exact repeat
    mix.push(mix[1].clone()); // exact repeat
    mix
}

fn assert_identical(label: &str, a: &SearchResult, b: &SearchResult) {
    assert_eq!(
        a.context.ranked(),
        b.context.ranked(),
        "{label}: contexts must agree bit for bit"
    );
    assert_eq!(a.characteristics.len(), b.characteristics.len(), "{label}");
    for (x, y) in a.characteristics.iter().zip(&b.characteristics) {
        assert_eq!(x.label, y.label, "{label}: label order");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{label}: scores must be bit-identical"
        );
        assert_eq!(x.significance, y.significance, "{label}: significance");
    }
}

/// 8 threads hammer one shared engine with rotated walks over the mix;
/// every returned result is asserted id-for-id against a fresh
/// sequential reference computed by one-at-a-time `FindNc::discover`
/// (or the sequential RandomWalk selector) over the same backend.
fn stress_engine<G: GraphAccess + Sync + Clone>(label: &str, graph: G, config: EngineConfig) {
    let dataset = generate(&GeneratorConfig::tiny(13));
    let mix = query_mix(&dataset);
    let queries: Vec<Query> = mix
        .iter()
        .map(|names| Query::by_names(&graph, names).expect("query resolves"))
        .collect();

    // Fresh sequential reference, computed before any engine ran.
    let findnc = FindNc::new(config.findnc.clone());
    let selector = match config.selector {
        SelectorMode::ContextRw => None,
        SelectorMode::RandomWalk => Some(RandomWalkSelector::new(config.randomwalk.clone())),
    };
    let reference: Vec<SearchResult> = queries
        .iter()
        .map(|q| match &selector {
            None => findnc.discover(&graph, q).expect("sequential run"),
            Some(sel) => findnc
                .discover_with_selector(&graph, q, sel)
                .expect("sequential run"),
        })
        .collect();

    let engine = QueryEngine::new(graph.clone(), config).expect("engine builds");
    let per_thread: Vec<Vec<(usize, Arc<SearchResult>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (engine, queries) = (&engine, &queries);
                s.spawn(move || {
                    let mut out = Vec::new();
                    for round in 0..ROUNDS {
                        for i in 0..queries.len() {
                            // Each thread rotates the mix differently,
                            // so exact repeats, shared-seed pairs and
                            // distinct queries all race concurrently.
                            let qi = (i + t + round) % queries.len();
                            out.push((qi, engine.run(&queries[qi]).expect("query serves")));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (t, answers) in per_thread.iter().enumerate() {
        for (qi, result) in answers {
            assert_identical(&format!("{label}/thread{t}/q{qi}"), result, &reference[*qi]);
        }
    }
    let stats = engine.stats();
    assert_eq!(
        stats.queries,
        (THREADS * ROUNDS * queries.len()) as u64,
        "{label}: every submission accounted"
    );
    if matches!(engine.config().selector, SelectorMode::RandomWalk) {
        assert_eq!(
            stats.weight_builds, 1,
            "{label}: one Eq.-1 weight build per engine under concurrency"
        );
    }
}

#[test]
fn concurrent_engine_matches_sequential_on_csr() {
    let dataset = generate(&GeneratorConfig::tiny(13));
    stress_engine("csr", &dataset.graph, engine_config());
}

#[test]
fn concurrent_engine_matches_sequential_on_store() {
    use notable_characteristics::store::StoreGraph;
    let dataset = generate(&GeneratorConfig::tiny(13));
    let store = to_triple_store(&dataset.graph);
    let sg = StoreGraph::new(store);
    stress_engine("store", &sg, engine_config());
}

#[test]
fn concurrent_engine_matches_sequential_under_one_entry_per_shard() {
    use notable_characteristics::store::StoreGraph;
    let dataset = generate(&GeneratorConfig::tiny(13));
    stress_engine("csr/tight", &dataset.graph, one_entry_per_shard_config());
    let store = to_triple_store(&dataset.graph);
    let sg = StoreGraph::new(store);
    stress_engine("store/tight", &sg, one_entry_per_shard_config());
}

#[test]
fn concurrent_randomwalk_matches_sequential_and_builds_weights_once() {
    let dataset = generate(&GeneratorConfig::tiny(13));
    let config = EngineConfig {
        findnc: pipeline_config(),
        selector: SelectorMode::RandomWalk,
        randomwalk: RandomWalkConfig {
            ppr: PprConfig {
                damping: 0.2,
                iterations: 10,
                parallel: false,
                epsilon: 0.0,
            },
            type_filter: TypeFilter::CommonAncestor,
        },
        ..EngineConfig::default()
    };
    stress_engine("csr/randomwalk", &dataset.graph, config);
}

/// The same hammering through the full `NckService` façade (which the
/// `Send + Sync` assertion in `nck-api` makes shareable by contract):
/// concurrent responses on both backends must equal the responses of a
/// fresh service queried sequentially.
#[test]
fn concurrent_service_matches_fresh_sequential_service_on_both_backends() {
    let dataset = generate(&GeneratorConfig::tiny(13));
    let mix = query_mix(&dataset);
    for backend in [Backend::Csr, Backend::Store] {
        let build = || {
            NckService::builder()
                .triple_store(to_triple_store(&dataset.graph))
                .backend(backend)
                .engine(engine_config())
                .build()
                .expect("service builds")
        };
        // A fresh service answering the mix one query at a time is the
        // reference (its parity with raw sequential FindNc is pinned by
        // the engine-level tests above and tests/engine_parity.rs).
        let sequential = build();
        let reference: Vec<_> = mix
            .iter()
            .map(|names| {
                let mut r = sequential
                    .query(&QueryRequest::entities(names.iter().cloned()))
                    .expect("sequential query");
                r.secs = None;
                r
            })
            .collect();

        let shared = build();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (shared, mix, reference) = (&shared, &mix, &reference);
                s.spawn(move || {
                    for i in 0..mix.len() {
                        let qi = (i + t) % mix.len();
                        let mut response = shared
                            .query(&QueryRequest::entities(mix[qi].iter().cloned()))
                            .expect("concurrent query");
                        response.secs = None;
                        assert_eq!(
                            response,
                            reference[qi],
                            "{}/thread{t}/q{qi}: concurrent response diverged",
                            shared.backend_name()
                        );
                    }
                });
            }
        });
    }
}
