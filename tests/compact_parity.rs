//! Compact-backend exactness: `CompactGraph` must answer id-for-id
//! identically to the CSR `KnowledgeGraph` and `StoreGraph` — at the
//! `GraphAccess` level on the Figure-1 graph, and through the full
//! engine pipeline on a datagen dataset — and its on-disk image must be
//! byte-stable for a fixed seed (the golden-file contract the zero-copy
//! loader depends on).

#![forbid(unsafe_code)]

use notable_characteristics::core::config::{ContextRwConfig, FindNcConfig, PathMiningConfig};
use notable_characteristics::core::context::TypeFilter;
use notable_characteristics::core::findnc::{FindNc, SearchResult};
use notable_characteristics::core::query::Query;
use notable_characteristics::datagen::{
    generate, generate_scale, DomainId, GeneratorConfig, ScaleConfig,
};
use notable_characteristics::engine::{EngineConfig, QueryEngine};
use notable_characteristics::graph::compact::encode_compact;
use notable_characteristics::graph::io::{load_compact, save_compact};
use notable_characteristics::graph::{CompactGraph, GraphAccess, GraphBuilder, KnowledgeGraph};
use notable_characteristics::store::graph_view::{to_knowledge_graph, to_triple_store};
use notable_characteristics::store::StoreGraph;

fn pipeline_config() -> FindNcConfig {
    FindNcConfig {
        context: ContextRwConfig {
            mining: PathMiningConfig {
                walks: 6_000,
                max_length: 4,
                seed: 99,
                parallel: true,
            },
            num_metapaths: 5,
            type_filter: TypeFilter::CommonAncestor,
            max_endpoint_fraction: 0.25,
        },
        context_size: 30,
        ..FindNcConfig::default()
    }
}

/// The paper's Figure-1 graph: politicians, studies, children.
fn figure1() -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    b.add_triple("Merkel", "studied", "Physics");
    for (p, domain) in [("Putin", "Law"), ("Renzi", "Law"), ("Hollande", "Law")] {
        b.add_triple(p, "studied", domain);
    }
    for (p, c) in [
        ("Obama", "Malia"),
        ("Putin", "Mariya"),
        ("Renzi", "Ester"),
        ("Renzi", "Emanuele"),
        ("Hollande", "Thomas"),
        ("Hollande", "Clemence"),
    ] {
        b.add_triple(p, "hasChild", c);
    }
    for p in ["Merkel", "Obama", "Putin", "Renzi", "Hollande"] {
        let n = b.node(p);
        b.set_type(n, "politician");
    }
    b.subtype("politician", "person");
    b.build()
}

/// Every `GraphAccess` observation must agree between two backends.
fn assert_access_parity<A: GraphAccess, B: GraphAccess>(label: &str, a: &A, b: &B) {
    assert_eq!(a.num_nodes(), b.num_nodes(), "{label}: node count");
    assert_eq!(
        a.num_stored_edges(),
        b.num_stored_edges(),
        "{label}: stored edges"
    );
    assert_eq!(a.labels().len(), b.labels().len(), "{label}: label count");
    for l in a.labels().iter() {
        assert_eq!(a.labels().name(l), b.labels().name(l), "{label}");
        assert_eq!(a.labels().inverse(l), b.labels().inverse(l), "{label}");
        assert_eq!(a.label_count(l), b.label_count(l), "{label}");
    }
    for v in a.nodes() {
        assert_eq!(a.node_name(v), b.node_name(v), "{label}: names");
        assert_eq!(a.node_by_name(a.node_name(v)), Some(v), "{label}");
        assert_eq!(
            a.node_type(v).map(|t| a.taxonomy().name(t).to_owned()),
            b.node_type(v).map(|t| b.taxonomy().name(t).to_owned()),
            "{label}: types"
        );
        assert_eq!(a.degree(v), b.degree(v), "{label}: degree of {v}");
        let ea: Vec<_> = a.edges(v).collect();
        let eb: Vec<_> = b.edges(v).collect();
        assert_eq!(ea, eb, "{label}: edges of {}", a.node_name(v));
        for (i, &edge) in ea.iter().enumerate() {
            assert_eq!(a.edge_at(v, i), edge, "{label}: edge_at");
        }
        let la: Vec<_> = a.labels_of(v).collect();
        let lb: Vec<_> = b.labels_of(v).collect();
        assert_eq!(la, lb, "{label}: labels_of");
        for l in a.labels().iter() {
            assert_eq!(
                a.neighbors_with_label(v, l).as_ref(),
                b.neighbors_with_label(v, l).as_ref(),
                "{label}: neighbors under {}",
                a.labels().name(l)
            );
        }
    }
}

#[test]
fn compact_matches_csr_and_store_on_figure1() {
    let kg = figure1();
    let compact = CompactGraph::from_graph(&kg);
    assert_access_parity("figure1 compact-vs-csr", &compact, &kg);

    // The store derives node ids from triple order, so compare against a
    // CSR graph and compact image rebuilt from the same store ordering.
    let store = to_triple_store(&kg);
    let aligned = to_knowledge_graph(&store);
    let compact2 = CompactGraph::from_graph(&aligned);
    let sg = StoreGraph::new(store);
    assert_access_parity("figure1 compact-vs-store", &compact2, &sg);
}

fn assert_identical(label: &str, a: &SearchResult, b: &SearchResult) {
    assert_eq!(
        a.context.ranked(),
        b.context.ranked(),
        "{label}: contexts must agree bit for bit"
    );
    assert_eq!(a.characteristics.len(), b.characteristics.len(), "{label}");
    for (x, y) in a.characteristics.iter().zip(&b.characteristics) {
        assert_eq!(x.label, y.label, "{label}: label order");
        assert_eq!(x.score, y.score, "{label}: scores");
        assert_eq!(x.significance, y.significance, "{label}: significance");
        assert_eq!(x.inst_significance, y.inst_significance, "{label}");
        assert_eq!(x.card_significance, y.card_significance, "{label}");
    }
}

fn seed_pairs(dataset: &notable_characteristics::datagen::Dataset) -> Vec<Vec<String>> {
    let members = &dataset
        .domain(DomainId::Actors)
        .expect("actors domain")
        .members;
    (0..4)
        .map(|i| {
            vec![
                dataset.graph.node_name(members[0]).to_owned(),
                dataset.graph.node_name(members[1 + i]).to_owned(),
            ]
        })
        .collect()
}

/// Full pipeline parity on a datagen dataset: the engine over
/// `CompactGraph` answers bit-identically to the engine and the
/// sequential baseline over the CSR and store backends.
#[test]
fn engine_results_identical_across_all_three_backends() {
    let dataset = generate(&GeneratorConfig::tiny(13));
    let names = seed_pairs(&dataset);
    let store = to_triple_store(&dataset.graph);
    let kg = to_knowledge_graph(&store);
    let compact = CompactGraph::from_graph(&kg);
    assert_access_parity("datagen compact-vs-csr", &compact, &kg);
    let sg = StoreGraph::new(store);

    let config = EngineConfig {
        findnc: pipeline_config(),
        ..EngineConfig::default()
    };
    let queries: Vec<Query> = names
        .iter()
        .map(|q| Query::by_names(&kg, q).expect("query resolves"))
        .collect();

    let compact_engine = QueryEngine::new(&compact, config.clone()).expect("engine builds");
    let compact_results = compact_engine.run_batch(&queries).expect("compact batch");

    // Sequential baseline over the compact backend itself.
    let findnc = FindNc::new(pipeline_config());
    for (q, batched) in queries.iter().zip(&compact_results) {
        let sequential = findnc.discover(&compact, q).expect("sequential run");
        assert_identical("compact batched-vs-sequential", batched, &sequential);
    }

    // Cross-backend: compact vs CSR vs store, id for id.
    let kg_engine = QueryEngine::new(&kg, config.clone()).expect("engine builds");
    let kg_results = kg_engine.run_batch(&queries).expect("csr batch");
    let sg_engine = QueryEngine::new(&sg, config).expect("engine builds");
    let sg_results = sg_engine.run_batch(&queries).expect("store batch");
    for ((c, k), s) in compact_results.iter().zip(&kg_results).zip(&sg_results) {
        assert_identical("compact-vs-csr", c, k);
        assert_identical("compact-vs-store", c, s);
    }
}

/// A compact graph loaded back from disk is the same backend as the one
/// encoded in memory — the pipeline cannot tell the difference.
#[test]
fn loaded_file_answers_like_the_in_memory_encoding() {
    let dataset = generate(&GeneratorConfig::tiny(13));
    let kg = to_knowledge_graph(&to_triple_store(&dataset.graph));
    let dir = std::env::temp_dir().join("nck_compact_parity_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny13.nckg");
    save_compact(&kg, &path).unwrap();
    let loaded = load_compact(&path).unwrap();
    assert_access_parity("loaded-vs-csr", &loaded, &kg);
    std::fs::remove_file(&path).ok();
}

/// Golden-file contract: for a fixed seed the encoder produces a
/// byte-identical image on every build — same length, same embedded
/// checksum. A change to these constants is a format or encoder change
/// and must be deliberate (bump `FORMAT_VERSION` when the layout moves).
#[test]
fn encoded_image_is_byte_stable_for_a_fixed_seed() {
    let cfg = ScaleConfig {
        nodes: 2_000,
        avg_degree: 8,
        num_labels: 6,
        num_types: 4,
        target_skew: 0.8,
        seed: 2_024,
    };
    let image = encode_compact(&generate_scale(&cfg));
    let again = encode_compact(&generate_scale(&cfg));
    assert_eq!(image, again, "two builds must agree byte for byte");
    CompactGraph::from_bytes(image.clone()).expect("golden image parses");

    // The pinned golden values for this config. The checksum lives at
    // image[16..24] (little-endian u64, covering everything after the
    // header); pinning it plus the length pins the whole image.
    let checksum = u64::from_le_bytes(image[16..24].try_into().unwrap());
    let golden_len = 140_980usize;
    let golden_checksum = 0x0dbb_fe6e_264a_c3f5u64;
    assert_eq!(
        (image.len(), checksum),
        (golden_len, golden_checksum),
        "compact image for seed 2024 drifted: if the encoder or generator \
         changed deliberately, update the golden values (and bump the \
         format version for layout changes)"
    );
}
