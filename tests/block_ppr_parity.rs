//! Property tests pinning the blocked multi-seed PPR executor to the
//! single-seed frontier runs it amortizes:
//!
//! - every lane of `run_block` must be **bit-for-bit** identical to a
//!   solo `frontier_outcome` run of that lane's seed — scores, dropped
//!   mass and the reported `l1_bound` alike — on the CSR, triple-store
//!   and compact backends;
//! - block width is a pure performance knob: any chunking (`B = 1`,
//!   `B` larger than the seed set, duplicate seeds in one block) and
//!   worker-parallel block execution produce the same bits in the same
//!   seed order.

#![forbid(unsafe_code)]

use notable_characteristics::core::config::PprConfig;
use notable_characteristics::core::ppr::{BlockPprWorkspace, PersonalizedPageRank, PprWorkspace};
use notable_characteristics::core::score::ScoreVec;
use notable_characteristics::graph::builder::GraphBuilder;
use notable_characteristics::graph::{CompactGraph, GraphAccess, KnowledgeGraph, NodeId};
use notable_characteristics::store::graph_view::to_triple_store;
use notable_characteristics::store::StoreGraph;
use proptest::prelude::*;

/// One generated case: triples over a small universe, a seed list
/// (duplicates allowed), a block width (0 disables nothing here —
/// `run_blocks` clamps it to 1), and a damping choice (0 → low,
/// 1 → high).
type Case = (Vec<(u8, u8, u8)>, Vec<u8>, usize, u8);

fn cases() -> impl Strategy<Value = Case> {
    (
        prop::collection::vec((0u8..24, 0u8..5, 0u8..24), 1..70),
        prop::collection::vec(0u8..24, 1..7),
        0usize..10,
        0u8..2,
    )
}

fn build(triples: &[(u8, u8, u8)]) -> KnowledgeGraph {
    let mut b = GraphBuilder::new();
    for &(s, p, o) in triples {
        b.add_triple(&format!("n{s}"), &format!("p{p}"), &format!("n{o}"));
    }
    // Every seed pick must resolve — on the triple-store backend too,
    // which only materializes nodes that occur in a triple.
    for i in 0..24 {
        b.add_triple(&format!("n{i}"), "exists", "universe");
    }
    b.build()
}

fn config(damping_low: u8, epsilon: f64) -> PprConfig {
    PprConfig {
        damping: if damping_low == 0 { 0.2 } else { 0.8 },
        iterations: 10,
        parallel: false,
        epsilon,
    }
}

fn bits(v: &ScoreVec) -> Vec<u64> {
    v.to_dense().iter().map(|x| x.to_bits()).collect()
}

/// Every lane of one `run_block` call vs. its solo run, on one backend.
fn assert_block_parity<G: GraphAccess + Sync>(graph: G, seed_names: &[String], cfg: PprConfig) {
    let seeds: Vec<NodeId> = seed_names
        .iter()
        .map(|name| graph.node_by_name(name).unwrap())
        .collect();
    let ppr = PersonalizedPageRank::new(graph, cfg).unwrap();
    let blocked = ppr.run_block(&seeds, &mut BlockPprWorkspace::new());
    prop_assert_eq!(blocked.len(), seeds.len());
    let mut solo_ws = PprWorkspace::new();
    for (lane, &seed) in seeds.iter().enumerate() {
        let solo = ppr.frontier_outcome(&[seed], &mut solo_ws);
        prop_assert_eq!(
            bits(&blocked[lane].scores),
            bits(&solo.scores),
            "lane {} scores diverged from the solo run",
            lane
        );
        prop_assert_eq!(
            blocked[lane].dropped_mass.to_bits(),
            solo.dropped_mass.to_bits(),
            "lane {} dropped_mass diverged",
            lane
        );
        prop_assert_eq!(
            blocked[lane].l1_bound.to_bits(),
            solo.l1_bound.to_bits(),
            "lane {} l1_bound diverged",
            lane
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// ε = 0: each blocked lane is its solo frontier run, bit for bit,
    /// on all three backends (the store and compact backends intern
    /// their own node ids, so each is resolved and checked in its own
    /// id space).
    #[test]
    fn blocked_lanes_match_solo_on_every_backend((ts, seeds, _w, low) in cases()) {
        let kg = build(&ts);
        let names: Vec<String> = seeds.iter().map(|i| format!("n{i}")).collect();
        let cfg = config(low, 0.0);
        assert_block_parity(StoreGraph::new(to_triple_store(&kg)), &names, cfg.clone());
        assert_block_parity(CompactGraph::from_graph(&kg), &names, cfg.clone());
        assert_block_parity(kg, &names, cfg);
    }

    /// ε > 0: pruning decisions are per-lane, so the sparse outcome —
    /// scores, dropped mass, and the reported L1 bound — also matches
    /// the solo runs bit for bit.
    #[test]
    fn pruned_lanes_match_solo_accounting((ts, seeds, _w, low) in cases(), eps_exp in 1u32..4) {
        let kg = build(&ts);
        let names: Vec<String> = seeds.iter().map(|i| format!("n{i}")).collect();
        let epsilon = 10f64.powi(-(eps_exp as i32)); // 1e-1 .. 1e-3
        assert_block_parity(kg, &names, config(low, epsilon));
    }

    /// Width and worker-parallelism are invisible in the output: any
    /// chunking of the seed list — width 1 (a degenerate block per
    /// seed), widths larger than the seed set, sequential or parallel
    /// block execution — returns the same bits in the same seed order.
    #[test]
    fn block_width_and_parallelism_are_answer_invariant((ts, seeds, width, low) in cases()) {
        let kg = build(&ts);
        let seeds: Vec<NodeId> = seeds
            .iter()
            .map(|i| kg.node_by_name(&format!("n{i}")).unwrap())
            .collect();
        let ppr = PersonalizedPageRank::new(&kg, config(low, 0.0)).unwrap();
        let want: Vec<Vec<u64>> = ppr
            .run_block(&seeds, &mut BlockPprWorkspace::new())
            .iter()
            .map(|o| bits(&o.scores))
            .collect();
        for parallel in [false, true] {
            let got: Vec<Vec<u64>> = ppr
                .run_blocks(&seeds, width, parallel)
                .iter()
                .map(|o| bits(&o.scores))
                .collect();
            prop_assert_eq!(
                &got, &want,
                "width {} parallel {} changed the answer", width, parallel
            );
        }
    }
}
