//! `nck` — command-line front end for notable-characteristics search.
//!
//! Three subcommands cover the workload lifecycle:
//!
//! - `nck gen`   — generate a synthetic dataset (YAGO-like / LinkedMDB-like
//!   / tiny) and persist it as N-Triples, optionally with a ready-to-run
//!   batch query file;
//! - `nck query` — run one query through the batched engine and print the
//!   ranked characteristics;
//! - `nck batch` — run a batch/repeated-query workload through the engine,
//!   sequentially, or both (`--mode compare`), reporting wall times, the
//!   speedup, and the engine's cache statistics.
//!
//! Output is human-readable tables by default, or JSON with `--json`.

use notable_characteristics::core::config::{PathMiningConfig, PprConfig};
use notable_characteristics::core::context::TypeFilter;
use notable_characteristics::core::findnc::{FindNc, SearchResult};
use notable_characteristics::core::ppr::RandomWalkSelector;
use notable_characteristics::core::query::Query;
use notable_characteristics::datagen::{generate, GeneratorConfig};
use notable_characteristics::engine::{EngineConfig, QueryEngine, SelectorMode};
use notable_characteristics::graph::GraphAccess;
use notable_characteristics::store::graph_view::{to_knowledge_graph, to_triple_store};
use notable_characteristics::store::ntriples::{read_ntriples, write_ntriples};
use notable_characteristics::store::{StoreGraph, TripleStore};
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
nck — notable characteristics search through knowledge graphs

USAGE:
  nck gen   --kind tiny|yago|lmdb --out FILE [--seed N] [--scale F]
            [--queries-out FILE]
  nck query --graph FILE.nt --query \"A,B,…\" [options]
  nck batch --graph FILE.nt --queries FILE [--repeat N]
            [--mode engine|sequential|compare] [--chunk N] [options]

query/batch options:
  --backend csr|store       graph backend (default: csr)
  --selector contextrw|randomwalk   context selector (default: contextrw)
  --type-filter common|query|none   candidate type filter (default: common)
  --context-size N          context size |C| (default: 100)
  --walks N                 PathMining walk budget (default: 30000)
  --top N                   characteristics to print per query (default: 10)
  --json                    emit JSON instead of tables
  --no-parallel             single-threaded execution

The batch query file holds one query per line: comma-separated entity
names (names containing a comma cannot be expressed); blank lines and
lines starting with '#' are skipped. --repeat N replays the whole file
N times (a repeated-seed workload); --chunk N streams the workload
through the engine in batches of N.";

/// Parsed command-line options shared by `query` and `batch`.
struct RunOpts {
    graph: String,
    backend: String,
    selector: SelectorMode,
    type_filter: TypeFilter,
    context_size: usize,
    walks: usize,
    top: usize,
    json: bool,
    parallel: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            graph: String::new(),
            backend: "csr".into(),
            selector: SelectorMode::ContextRw,
            type_filter: TypeFilter::CommonAncestor,
            context_size: 100,
            walks: 30_000,
            top: 10,
            json: false,
            parallel: true,
        }
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("nck: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown subcommand {other:?}")),
        None => fail("a subcommand is required"),
    }
}

/// Pulls `--flag value` pairs out of `args`; returns leftovers it does
/// not recognize so each subcommand can reject them.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{flag}: bad value {v:?}"))
}

fn parse_run_opts(args: &mut Vec<String>) -> Result<RunOpts, String> {
    let mut o = RunOpts::default();
    if let Some(v) = take_flag(args, "--graph")? {
        o.graph = v;
    }
    if let Some(v) = take_flag(args, "--backend")? {
        if v != "csr" && v != "store" {
            return Err(format!("--backend must be csr or store, got {v:?}"));
        }
        o.backend = v;
    }
    if let Some(v) = take_flag(args, "--selector")? {
        o.selector = match v.as_str() {
            "contextrw" => SelectorMode::ContextRw,
            "randomwalk" => SelectorMode::RandomWalk,
            _ => {
                return Err(format!(
                    "--selector must be contextrw or randomwalk, got {v:?}"
                ))
            }
        };
    }
    if let Some(v) = take_flag(args, "--type-filter")? {
        o.type_filter = match v.as_str() {
            "common" => TypeFilter::CommonAncestor,
            "query" => TypeFilter::QueryTypes,
            "none" => TypeFilter::None,
            _ => {
                return Err(format!(
                    "--type-filter must be common, query or none, got {v:?}"
                ))
            }
        };
    }
    if let Some(v) = take_flag(args, "--context-size")? {
        o.context_size = parse_num(&v, "--context-size")?;
    }
    if let Some(v) = take_flag(args, "--walks")? {
        o.walks = parse_num(&v, "--walks")?;
    }
    if let Some(v) = take_flag(args, "--top")? {
        o.top = parse_num(&v, "--top")?;
    }
    o.json = take_switch(args, "--json");
    o.parallel = !take_switch(args, "--no-parallel");
    Ok(o)
}

fn engine_config(o: &RunOpts) -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.findnc.context.mining = PathMiningConfig {
        walks: o.walks,
        parallel: o.parallel,
        ..PathMiningConfig::default()
    };
    cfg.findnc.context.type_filter = o.type_filter;
    cfg.findnc.context_size = o.context_size;
    cfg.selector = o.selector;
    cfg.randomwalk.type_filter = o.type_filter;
    // Sequential summation so engine answers are bit-identical to the
    // sequential baseline the compare mode measures against.
    cfg.randomwalk.ppr = PprConfig {
        parallel: false,
        ..PprConfig::default()
    };
    cfg.parallel = o.parallel;
    cfg
}

fn load_store(path: &str) -> Result<TripleStore, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    read_ntriples(std::io::BufReader::new(file)).map_err(|e| format!("cannot parse {path}: {e}"))
}

// ---------------------------------------------------------------------------
// nck gen
// ---------------------------------------------------------------------------

fn cmd_gen(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let parsed = (|| -> Result<(), String> {
        let kind = take_flag(&mut args, "--kind")?.ok_or("--kind is required")?;
        let out = take_flag(&mut args, "--out")?.ok_or("--out is required")?;
        let seed: u64 = match take_flag(&mut args, "--seed")? {
            Some(v) => parse_num(&v, "--seed")?,
            None => 42,
        };
        let scale: f64 = match take_flag(&mut args, "--scale")? {
            Some(v) => parse_num(&v, "--scale")?,
            None => 1.0,
        };
        let queries_out = take_flag(&mut args, "--queries-out")?;
        if let Some(junk) = args.first() {
            return Err(format!("unexpected argument {junk:?}"));
        }
        let config = match kind.as_str() {
            "tiny" => GeneratorConfig::tiny(seed),
            "yago" => GeneratorConfig::yago_like(seed).scaled(scale),
            "lmdb" => GeneratorConfig::linkedmdb_like(seed).scaled(scale),
            _ => return Err(format!("--kind must be tiny, yago or lmdb, got {kind:?}")),
        };
        let started = Instant::now();
        let dataset = generate(&config);
        let store = to_triple_store(&dataset.graph);
        let file =
            std::fs::File::create(&out).map_err(|e| format!("cannot create {out:?}: {e}"))?;
        write_ntriples(&store, std::io::BufWriter::new(file))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!(
            "wrote {} ({} nodes, {} logical edges, {} statements) in {:.1}s",
            out,
            dataset.graph.num_nodes(),
            dataset.graph.num_logical_edges(),
            store.len(),
            started.elapsed().as_secs_f64()
        );
        if let Some(qpath) = queries_out {
            let mut f = std::fs::File::create(&qpath)
                .map_err(|e| format!("cannot create {qpath:?}: {e}"))?;
            let mut n = 0usize;
            for spec in &dataset.queries {
                // The batch file format is comma-delimited; a name
                // containing a comma would be silently unparseable by
                // `nck batch`, so skip it loudly instead.
                if spec.names.iter().any(|name| name.contains(',')) {
                    eprintln!(
                        "skipping query set {}: an entity name contains the ',' delimiter",
                        spec.label()
                    );
                    continue;
                }
                let line: Vec<&str> = spec.names.iter().map(String::as_str).collect();
                writeln!(f, "# {}", spec.label()).map_err(|e| e.to_string())?;
                writeln!(f, "{}", line.join(",")).map_err(|e| e.to_string())?;
                n += 1;
            }
            eprintln!("wrote {n} query sets to {qpath}");
        }
        Ok(())
    })();
    match parsed {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

// ---------------------------------------------------------------------------
// nck query / nck batch
// ---------------------------------------------------------------------------

fn cmd_query(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let run = (|| -> Result<(), String> {
        let query_spec = take_flag(&mut args, "--query")?.ok_or("--query is required")?;
        let opts = parse_run_opts(&mut args)?;
        if opts.graph.is_empty() {
            return Err("--graph is required".into());
        }
        if let Some(junk) = args.first() {
            return Err(format!("unexpected argument {junk:?}"));
        }
        let store = load_store(&opts.graph)?;
        with_backend(&store, &opts, |graph, opts| {
            run_single(graph, opts, &query_spec)
        })
    })();
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nck: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_batch(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let run = (|| -> Result<(), String> {
        let queries_path = take_flag(&mut args, "--queries")?.ok_or("--queries is required")?;
        let repeat: usize = match take_flag(&mut args, "--repeat")? {
            Some(v) => parse_num(&v, "--repeat")?,
            None => 1,
        };
        let mode = take_flag(&mut args, "--mode")?.unwrap_or_else(|| "engine".into());
        if !["engine", "sequential", "compare"].contains(&mode.as_str()) {
            return Err(format!(
                "--mode must be engine, sequential or compare, got {mode:?}"
            ));
        }
        let chunk: usize = match take_flag(&mut args, "--chunk")? {
            Some(v) => parse_num(&v, "--chunk")?,
            None => 0,
        };
        let opts = parse_run_opts(&mut args)?;
        if opts.graph.is_empty() {
            return Err("--graph is required".into());
        }
        if let Some(junk) = args.first() {
            return Err(format!("unexpected argument {junk:?}"));
        }
        let text = std::fs::read_to_string(&queries_path)
            .map_err(|e| format!("cannot read {queries_path:?}: {e}"))?;
        let lines: Vec<String> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_owned)
            .collect();
        if lines.is_empty() {
            return Err(format!("{queries_path}: no queries"));
        }
        let store = load_store(&opts.graph)?;
        with_backend(&store, &opts, |graph, opts| {
            run_workload(graph, opts, &lines, repeat.max(1), &mode, chunk)
        })
    })();
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nck: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Dispatches on `--backend`, keeping the workload code generic over
/// [`GraphAccess`].
fn with_backend<F>(store: &TripleStore, opts: &RunOpts, f: F) -> Result<(), String>
where
    F: for<'a> Fn(&'a (dyn DynGraph + 'a), &RunOpts) -> Result<(), String>,
{
    let started = Instant::now();
    if opts.backend == "csr" {
        let graph = to_knowledge_graph(store);
        eprintln!(
            "loaded csr backend: {} nodes, {} stored edges ({:.1}s)",
            graph.num_nodes(),
            GraphAccess::num_stored_edges(&graph),
            started.elapsed().as_secs_f64()
        );
        f(&graph, opts)
    } else {
        let graph = StoreGraph::new(store);
        eprintln!(
            "loaded store backend: {} nodes, {} stored edges ({:.1}s)",
            GraphAccess::num_nodes(&graph),
            GraphAccess::num_stored_edges(&graph),
            started.elapsed().as_secs_f64()
        );
        f(&graph, opts)
    }
}

/// Object-safe subset shim: the CLI only needs `GraphAccess` through
/// generic helpers, so re-dispatch through a small enum-free trait.
trait DynGraph: Sync {
    fn run_single(&self, opts: &RunOpts, query_spec: &str) -> Result<(), String>;
    fn run_workload(
        &self,
        opts: &RunOpts,
        lines: &[String],
        repeat: usize,
        mode: &str,
        chunk: usize,
    ) -> Result<(), String>;
}

impl<G: GraphAccess + Sync> DynGraph for G {
    fn run_single(&self, opts: &RunOpts, query_spec: &str) -> Result<(), String> {
        run_single_impl(self, opts, query_spec)
    }
    fn run_workload(
        &self,
        opts: &RunOpts,
        lines: &[String],
        repeat: usize,
        mode: &str,
        chunk: usize,
    ) -> Result<(), String> {
        run_workload_impl(self, opts, lines, repeat, mode, chunk)
    }
}

fn run_single(graph: &(dyn DynGraph + '_), opts: &RunOpts, spec: &str) -> Result<(), String> {
    graph.run_single(opts, spec)
}

fn run_workload(
    graph: &(dyn DynGraph + '_),
    opts: &RunOpts,
    lines: &[String],
    repeat: usize,
    mode: &str,
    chunk: usize,
) -> Result<(), String> {
    graph.run_workload(opts, lines, repeat, mode, chunk)
}

fn parse_query<G: GraphAccess>(graph: &G, line: &str) -> Result<Query, String> {
    let names: Vec<&str> = line
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    Query::by_names(graph, &names).map_err(|e| format!("query {line:?}: {e}"))
}

fn run_single_impl<G: GraphAccess + Sync>(
    graph: &G,
    opts: &RunOpts,
    spec: &str,
) -> Result<(), String> {
    let query = parse_query(graph, spec)?;
    let engine = QueryEngine::new(graph, engine_config(opts)).map_err(|e| e.to_string())?;
    let started = Instant::now();
    let result = engine.run(&query).map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();
    if opts.json {
        println!("{}", result_json(graph, spec, &result, opts.top));
    } else {
        print_result(graph, spec, &result, opts.top);
        println!("({:.3}s)", elapsed.as_secs_f64());
    }
    Ok(())
}

fn run_workload_impl<G: GraphAccess + Sync>(
    graph: &G,
    opts: &RunOpts,
    lines: &[String],
    repeat: usize,
    mode: &str,
    chunk: usize,
) -> Result<(), String> {
    let base: Vec<Query> = lines
        .iter()
        .map(|l| parse_query(graph, l))
        .collect::<Result<_, _>>()?;
    let mut workload: Vec<Query> = Vec::with_capacity(base.len() * repeat);
    for _ in 0..repeat {
        workload.extend(base.iter().cloned());
    }
    let cfg = engine_config(opts);

    if mode == "compare" {
        // Level the substrate between the two timed phases: fault every
        // per-predicate run into the store backend's shared cache now
        // (a no-op on the CSR backend). Otherwise whichever phase runs
        // first would absorb the one-time POS scans and skew the
        // printed speedup.
        for label in graph.labels().iter() {
            graph.warm_predicate(label);
        }
    }

    let mut engine_secs = None;
    let mut seq_secs = None;
    let mut engine_results = None;
    let mut stats = None;

    if mode == "engine" || mode == "compare" {
        let engine = QueryEngine::new(graph, cfg.clone()).map_err(|e| e.to_string())?;
        let started = Instant::now();
        let results = if chunk > 0 {
            engine
                .run_stream(workload.iter().cloned(), chunk)
                .map_err(|e| e.to_string())?
        } else {
            engine.run_batch(&workload).map_err(|e| e.to_string())?
        };
        engine_secs = Some(started.elapsed().as_secs_f64());
        stats = Some(engine.stats());
        engine_results = Some(results);
    }
    if mode == "sequential" || mode == "compare" {
        let findnc = FindNc::new(cfg.findnc.clone());
        let started = Instant::now();
        let mut results = Vec::with_capacity(workload.len());
        for q in &workload {
            let r = match cfg.selector {
                SelectorMode::ContextRw => findnc.discover(graph, q),
                SelectorMode::RandomWalk => {
                    let selector = RandomWalkSelector::new(cfg.randomwalk.clone());
                    findnc.discover_with_selector(graph, q, &selector)
                }
            }
            .map_err(|e| e.to_string())?;
            results.push(r);
        }
        seq_secs = Some(started.elapsed().as_secs_f64());
        if let Some(engine_results) = &engine_results {
            let identical = engine_results
                .iter()
                .zip(&results)
                .all(|(a, b)| rankings_equal(a, b));
            if !identical {
                return Err("engine and sequential rankings diverged".into());
            }
        }
        if engine_results.is_none() {
            engine_results = Some(results.into_iter().map(std::sync::Arc::new).collect());
        }
    }

    let results = engine_results.expect("at least one mode ran");
    if opts.json {
        println!(
            "{}",
            workload_json(
                graph,
                lines,
                repeat,
                &results,
                opts,
                engine_secs,
                seq_secs,
                &stats
            )
        );
    } else {
        print_workload(
            graph,
            lines,
            repeat,
            &results,
            opts,
            engine_secs,
            seq_secs,
            &stats,
        );
    }
    Ok(())
}

fn rankings_equal(a: &SearchResult, b: &SearchResult) -> bool {
    a.context.ranked() == b.context.ranked()
        && a.characteristics.len() == b.characteristics.len()
        && a.characteristics
            .iter()
            .zip(&b.characteristics)
            .all(|(x, y)| {
                x.label == y.label && x.score == y.score && x.significance == y.significance
            })
}

// ---------------------------------------------------------------------------
// output
// ---------------------------------------------------------------------------

fn print_result<G: GraphAccess>(graph: &G, spec: &str, result: &SearchResult, top: usize) {
    println!("query: {spec}");
    println!(
        "context: {} nodes (top: {})",
        result.context.len(),
        result
            .context
            .nodes()
            .take(5)
            .map(|n| graph.node_name(n).to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "{:<28} {:>8} {:>12} {:>12}",
        "label", "score", "inst-p", "card-p"
    );
    for c in result.characteristics.iter().take(top) {
        println!(
            "{:<28} {:>8.3} {:>12} {:>12}",
            graph.label_name(c.label),
            c.score,
            fmt_p(c.inst_significance),
            fmt_p(c.card_significance),
        );
    }
}

fn fmt_p(p: Option<f64>) -> String {
    match p {
        Some(p) => format!("{p:.4}"),
        None => "-".into(),
    }
}

#[allow(clippy::too_many_arguments)]
fn print_workload<G: GraphAccess>(
    graph: &G,
    lines: &[String],
    repeat: usize,
    results: &[std::sync::Arc<SearchResult>],
    opts: &RunOpts,
    engine_secs: Option<f64>,
    seq_secs: Option<f64>,
    stats: &Option<notable_characteristics::engine::EngineStats>,
) {
    println!(
        "workload: {} queries ({} distinct lines × {repeat})",
        results.len(),
        lines.len()
    );
    if let Some(s) = engine_secs {
        println!(
            "engine:     {s:.3}s total, {:.1} queries/s",
            results.len() as f64 / s.max(1e-12)
        );
    }
    if let Some(s) = seq_secs {
        println!(
            "sequential: {s:.3}s total, {:.1} queries/s",
            results.len() as f64 / s.max(1e-12)
        );
    }
    if let (Some(e), Some(s)) = (engine_secs, seq_secs) {
        println!(
            "speedup:    {:.2}× (identical rankings verified)",
            s / e.max(1e-12)
        );
    }
    if let Some(st) = stats {
        println!(
            "engine stats: {} executed of {} submitted ({} deduplicated); \
             result cache {}/{} hits, context cache {}/{}, ppr cache {}/{}",
            st.executed_groups,
            st.queries,
            st.deduplicated,
            st.result.hits,
            st.result.hits + st.result.misses,
            st.context.hits,
            st.context.hits + st.context.misses,
            st.ppr.hits,
            st.ppr.hits + st.ppr.misses,
        );
    }
    // Per distinct query line, the top characteristics of its first run.
    for (i, line) in lines.iter().enumerate() {
        println!();
        print_result(graph, line, &results[i], opts.top);
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn result_json<G: GraphAccess>(graph: &G, spec: &str, result: &SearchResult, top: usize) -> String {
    let chars: Vec<String> = result
        .characteristics
        .iter()
        .take(top)
        .map(|c| {
            format!(
                "{{\"label\":\"{}\",\"score\":{},\"notable\":{},\"inst_p\":{},\"card_p\":{}}}",
                json_escape(graph.label_name(c.label)),
                json_num(c.score),
                c.notable(),
                c.inst_significance.map_or("null".into(), json_num),
                c.card_significance.map_or("null".into(), json_num),
            )
        })
        .collect();
    let context: Vec<String> = result
        .context
        .nodes()
        .map(|n| format!("\"{}\"", json_escape(graph.node_name(n))))
        .collect();
    format!(
        "{{\"query\":\"{}\",\"context_size\":{},\"context\":[{}],\"characteristics\":[{}]}}",
        json_escape(spec),
        result.context.len(),
        context.join(","),
        chars.join(",")
    )
}

#[allow(clippy::too_many_arguments)]
fn workload_json<G: GraphAccess>(
    graph: &G,
    lines: &[String],
    repeat: usize,
    results: &[std::sync::Arc<SearchResult>],
    opts: &RunOpts,
    engine_secs: Option<f64>,
    seq_secs: Option<f64>,
    stats: &Option<notable_characteristics::engine::EngineStats>,
) -> String {
    let per_query: Vec<String> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| result_json(graph, line, &results[i], opts.top))
        .collect();
    let mut fields = vec![
        format!("\"queries\":{}", results.len()),
        format!("\"distinct_lines\":{}", lines.len()),
        format!("\"repeat\":{repeat}"),
    ];
    if let Some(s) = engine_secs {
        fields.push(format!("\"engine_secs\":{}", json_num(s)));
    }
    if let Some(s) = seq_secs {
        fields.push(format!("\"sequential_secs\":{}", json_num(s)));
    }
    if let (Some(e), Some(s)) = (engine_secs, seq_secs) {
        fields.push(format!("\"speedup\":{}", json_num(s / e.max(1e-12))));
    }
    if let Some(st) = stats {
        fields.push(format!(
            "\"engine_stats\":{{\"submitted\":{},\"executed\":{},\"deduplicated\":{},\
             \"result_hits\":{},\"context_hits\":{},\"ppr_hits\":{}}}",
            st.queries,
            st.executed_groups,
            st.deduplicated,
            st.result.hits,
            st.context.hits,
            st.ppr.hits
        ));
    }
    fields.push(format!("\"results\":[{}]", per_query.join(",")));
    format!("{{{}}}", fields.join(","))
}
