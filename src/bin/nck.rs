//! `nck` — command-line front end for notable-characteristics search.
//!
//! A thin shell over [`nck_api`]: every query answer flows through
//! [`NckService`] and its serde request/response types, so `--json`
//! output *is* the service wire format. Three subcommands cover the
//! workload lifecycle:
//!
//! - `nck gen`   — generate a synthetic dataset (YAGO-like / LinkedMDB-like
//!   / tiny) and persist it as N-Triples, optionally with a ready-to-run
//!   batch query file;
//! - `nck build-graph` — compile N-Triples (or a generated scale graph)
//!   into the compact binary graph format, which `--graph-format compact`
//!   then opens zero-copy (memory-mapped) instead of re-parsing;
//! - `nck query` — run one query through the batched engine and print the
//!   ranked characteristics;
//! - `nck batch` — run a batch/repeated-query workload through the engine,
//!   sequentially, or both (`--mode compare`), reporting wall times, the
//!   speedup, and the engine's cache statistics;
//! - `nck serve` — put the service behind a TCP socket speaking
//!   length-prefixed framed JSON (the same request/response schema), with
//!   bounded admission, per-request deadlines and graceful drain on
//!   stdin EOF.
//!
//! Output is human-readable tables by default, or JSON with `--json`.

#![forbid(unsafe_code)]

use notable_characteristics::api::{
    json, Backend, NckService, QueryRequest, QueryResponse, WorkloadMode, WorkloadReport,
    WorkloadRequest,
};
use notable_characteristics::core::config::{PathMiningConfig, PprConfig};
use notable_characteristics::core::context::TypeFilter;
use notable_characteristics::datagen::{generate, generate_scale, GeneratorConfig, ScaleConfig};
use notable_characteristics::engine::{EngineConfig, SelectorMode};
use notable_characteristics::graph::io::save_compact;
use notable_characteristics::serve::{serve, ServeConfig, ServeMetrics};
use notable_characteristics::store::graph_view::{to_knowledge_graph, to_triple_store};
use notable_characteristics::store::ntriples::{read_ntriples, write_ntriples};
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
nck — notable characteristics search through knowledge graphs

USAGE:
  nck gen   --kind tiny|yago|lmdb --out FILE [--seed N] [--scale F]
            [--queries-out FILE]
  nck build-graph (--in FILE.nt | --scale small|medium|large) --out FILE.nckg
            [--seed N]
  nck query --graph FILE --query \"A,B,…\" [options]
  nck batch --graph FILE --queries FILE [--repeat N]
            [--mode engine|sequential|compare] [--chunk N] [--clients N]
            [options]
  nck serve --graph FILE [--addr HOST:PORT] [--workers N]
            [--queue-depth N] [--max-connections N] [--max-frame-bytes N]
            [--default-deadline-ms N] [options]

query/batch options:
  --graph-format nt|compact graph file format (default: nt). compact files
                            (from nck build-graph) open zero-copy and fix
                            the backend to compact
  --backend csr|store|compact   graph backend (default: csr)
  --selector contextrw|randomwalk   context selector (default: contextrw)
  --type-filter common|query|none   candidate type filter (default: common)
  --context-size N          context size |C| (default: 100)
  --walks N                 PathMining walk budget (default: 30000)
  --epsilon F               randomwalk sparse-PPR pruning threshold
                            (default: 0 = exact frontier execution)
  --top N                   characteristics to print per query (default: 10)
  --threads N               cap worker threads (default: derive from the
                            machine; results are identical under any cap)
  --ppr-block-width N       seeds per blocked-PPR lane block in randomwalk
                            batches (default: 8; 0 or 1 disables blocking;
                            results are identical at any width)
  --score-sweep on|off      score labels through the node-major sweep
                            (default: on; off restores the per-label loop;
                            rankings are identical either way)
  --json                    emit JSON instead of tables
  --no-parallel             single-threaded execution

The batch query file holds one query per line: comma-separated entity
names (names containing a comma cannot be expressed); blank lines and
lines starting with '#' are skipped. --repeat N replays the whole file
N times (a repeated-seed workload); --chunk N streams the workload
through the engine in batches of N; --clients N additionally replays
the workload from N concurrent client threads over one shared engine,
reporting aggregate throughput and latency percentiles (responses are
verified id-for-id against the single-client run).

nck serve binds --addr (default 127.0.0.1:4517; port 0 picks an
ephemeral port, printed on startup), serves framed JSON requests until
stdin reaches EOF, then drains gracefully: new work is shed with a typed
overloaded error while every already-admitted request is finished and
flushed. Final serving metrics go to stdout (JSON with --json).";

/// How `--graph` should be interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum GraphFormat {
    /// N-Triples text, re-parsed on every load.
    #[default]
    Ntriples,
    /// The compact binary image from `nck build-graph`, opened zero-copy.
    Compact,
}

/// Parsed command-line options shared by `query` and `batch`.
#[derive(Debug)]
struct RunOpts {
    graph: String,
    format: GraphFormat,
    /// `Some` only when `--backend` was given explicitly: a compact graph
    /// file fixes the backend, and an explicit conflicting choice must
    /// error instead of being silently dropped.
    backend: Option<Backend>,
    selector: SelectorMode,
    type_filter: TypeFilter,
    context_size: usize,
    walks: usize,
    epsilon: f64,
    top: usize,
    threads: Option<usize>,
    /// `Some` only when `--ppr-block-width` was given; the engine default
    /// applies otherwise.
    ppr_block_width: Option<usize>,
    /// `Some` only when `--score-sweep` was given; the engine default
    /// (sweep on) applies otherwise.
    score_sweep: Option<bool>,
    json: bool,
    parallel: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            graph: String::new(),
            format: GraphFormat::Ntriples,
            backend: None,
            selector: SelectorMode::ContextRw,
            type_filter: TypeFilter::CommonAncestor,
            context_size: 100,
            walks: 30_000,
            epsilon: 0.0,
            top: 10,
            threads: None,
            ppr_block_width: None,
            score_sweep: None,
            json: false,
            parallel: true,
        }
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("nck: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("build-graph") => cmd_build_graph(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => fail(&format!("unknown subcommand {other:?}")),
        None => fail("a subcommand is required"),
    }
}

/// Pulls a `--flag value` pair out of `args`; returns leftovers it does
/// not recognize so each subcommand can reject them. Passing the same
/// flag twice is an error — the old behavior silently left the second
/// occurrence behind, where it was later misparsed as a positional.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        if args.iter().any(|a| a == flag) {
            return Err(format!("{flag} given more than once"));
        }
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{flag}: bad value {v:?}"))
}

fn parse_run_opts(args: &mut Vec<String>) -> Result<RunOpts, String> {
    let mut o = RunOpts::default();
    if let Some(v) = take_flag(args, "--graph")? {
        o.graph = v;
    }
    if let Some(v) = take_flag(args, "--graph-format")? {
        o.format = match v.as_str() {
            "nt" => GraphFormat::Ntriples,
            "compact" => GraphFormat::Compact,
            _ => return Err(format!("--graph-format must be nt or compact, got {v:?}")),
        };
    }
    if let Some(v) = take_flag(args, "--backend")? {
        o.backend = Some(match v.as_str() {
            "csr" => Backend::Csr,
            "store" => Backend::Store,
            "compact" => Backend::Compact,
            _ => {
                return Err(format!(
                    "--backend must be csr, store or compact, got {v:?}"
                ))
            }
        });
    }
    if let Some(v) = take_flag(args, "--selector")? {
        o.selector = match v.as_str() {
            "contextrw" => SelectorMode::ContextRw,
            "randomwalk" => SelectorMode::RandomWalk,
            _ => {
                return Err(format!(
                    "--selector must be contextrw or randomwalk, got {v:?}"
                ))
            }
        };
    }
    if let Some(v) = take_flag(args, "--type-filter")? {
        o.type_filter = match v.as_str() {
            "common" => TypeFilter::CommonAncestor,
            "query" => TypeFilter::QueryTypes,
            "none" => TypeFilter::None,
            _ => {
                return Err(format!(
                    "--type-filter must be common, query or none, got {v:?}"
                ))
            }
        };
    }
    if let Some(v) = take_flag(args, "--context-size")? {
        o.context_size = parse_num(&v, "--context-size")?;
    }
    if let Some(v) = take_flag(args, "--walks")? {
        o.walks = parse_num(&v, "--walks")?;
    }
    if let Some(v) = take_flag(args, "--epsilon")? {
        o.epsilon = parse_num(&v, "--epsilon")?;
        if !(o.epsilon >= 0.0 && o.epsilon.is_finite()) {
            return Err(format!(
                "--epsilon must be finite and non-negative, got {v:?}"
            ));
        }
    }
    if let Some(v) = take_flag(args, "--top")? {
        o.top = parse_num(&v, "--top")?;
    }
    if let Some(v) = take_flag(args, "--threads")? {
        let threads: usize = parse_num(&v, "--threads")?;
        if threads == 0 {
            return Err("--threads must be at least 1".into());
        }
        o.threads = Some(threads);
    }
    if let Some(v) = take_flag(args, "--ppr-block-width")? {
        o.ppr_block_width = Some(parse_num(&v, "--ppr-block-width")?);
    }
    if let Some(v) = take_flag(args, "--score-sweep")? {
        o.score_sweep = Some(match v.as_str() {
            "on" | "true" => true,
            "off" | "false" => false,
            _ => return Err(format!("--score-sweep must be on or off, got {v:?}")),
        });
    }
    o.json = take_switch(args, "--json");
    o.parallel = !take_switch(args, "--no-parallel");
    Ok(o)
}

fn engine_config(o: &RunOpts) -> EngineConfig {
    let mut cfg = EngineConfig::default();
    cfg.findnc.context.mining = PathMiningConfig {
        walks: o.walks,
        parallel: o.parallel,
        ..PathMiningConfig::default()
    };
    cfg.findnc.context.type_filter = o.type_filter;
    cfg.findnc.context_size = o.context_size;
    cfg.selector = o.selector;
    cfg.randomwalk.type_filter = o.type_filter;
    // Sequential summation so engine answers are bit-identical to the
    // sequential baseline the compare mode measures against.
    cfg.randomwalk.ppr = PprConfig {
        parallel: false,
        epsilon: o.epsilon,
        ..PprConfig::default()
    };
    cfg.parallel = o.parallel;
    cfg.threads = o.threads;
    if let Some(width) = o.ppr_block_width {
        cfg.ppr_block_width = width;
    }
    if let Some(on) = o.score_sweep {
        cfg.findnc.score_sweep = on;
    }
    cfg
}

/// Builds the service and echoes the load line the CLI has always
/// printed.
fn load_service(opts: &RunOpts) -> Result<NckService, String> {
    let mut builder = NckService::builder().engine(engine_config(opts));
    builder = match opts.format {
        GraphFormat::Ntriples => builder.ntriples(&opts.graph),
        GraphFormat::Compact => builder.compact_file(&opts.graph),
    };
    if let Some(backend) = opts.backend {
        builder = builder.backend(backend);
    }
    let service = builder.build().map_err(|e| e.to_string())?;
    eprintln!(
        "loaded {} backend: {} nodes, {} stored edges, ~{} resident bytes ({:.3}s)",
        service.backend_name(),
        service.num_nodes(),
        service.num_stored_edges(),
        service.graph_bytes(),
        service.load_secs()
    );
    Ok(service)
}

/// Turns one comma-separated query line into a request tagged with the
/// raw line (so responses echo exactly what was submitted).
fn request_for_line(line: &str, top: usize) -> QueryRequest {
    let mut req = QueryRequest::entities(
        line.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned),
    );
    req.label = Some(line.to_owned());
    req.top = Some(top);
    req
}

// ---------------------------------------------------------------------------
// nck gen
// ---------------------------------------------------------------------------

fn cmd_gen(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let parsed = (|| -> Result<(), String> {
        let kind = take_flag(&mut args, "--kind")?.ok_or("--kind is required")?;
        let out = take_flag(&mut args, "--out")?.ok_or("--out is required")?;
        let seed: u64 = match take_flag(&mut args, "--seed")? {
            Some(v) => parse_num(&v, "--seed")?,
            None => 42,
        };
        let scale: f64 = match take_flag(&mut args, "--scale")? {
            Some(v) => parse_num(&v, "--scale")?,
            None => 1.0,
        };
        let queries_out = take_flag(&mut args, "--queries-out")?;
        if let Some(junk) = args.first() {
            return Err(format!("unexpected argument {junk:?}"));
        }
        let config = match kind.as_str() {
            "tiny" => GeneratorConfig::tiny(seed),
            "yago" => GeneratorConfig::yago_like(seed).scaled(scale),
            "lmdb" => GeneratorConfig::linkedmdb_like(seed).scaled(scale),
            _ => return Err(format!("--kind must be tiny, yago or lmdb, got {kind:?}")),
        };
        let started = Instant::now();
        let dataset = generate(&config);
        let store = to_triple_store(&dataset.graph);
        let file =
            std::fs::File::create(&out).map_err(|e| format!("cannot create {out:?}: {e}"))?;
        write_ntriples(&store, std::io::BufWriter::new(file))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!(
            "wrote {} ({} nodes, {} logical edges, {} statements) in {:.1}s",
            out,
            dataset.graph.num_nodes(),
            dataset.graph.num_logical_edges(),
            store.len(),
            started.elapsed().as_secs_f64()
        );
        if let Some(qpath) = queries_out {
            let mut f = std::fs::File::create(&qpath)
                .map_err(|e| format!("cannot create {qpath:?}: {e}"))?;
            let mut n = 0usize;
            for spec in &dataset.queries {
                // The batch file format is comma-delimited; a name
                // containing a comma would be silently unparseable by
                // `nck batch`, so skip it loudly instead.
                if spec.names.iter().any(|name| name.contains(',')) {
                    eprintln!(
                        "skipping query set {}: an entity name contains the ',' delimiter",
                        spec.label()
                    );
                    continue;
                }
                let line: Vec<&str> = spec.names.iter().map(String::as_str).collect();
                writeln!(f, "# {}", spec.label()).map_err(|e| e.to_string())?;
                writeln!(f, "{}", line.join(",")).map_err(|e| e.to_string())?;
                n += 1;
            }
            eprintln!("wrote {n} query sets to {qpath}");
        }
        Ok(())
    })();
    match parsed {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

// ---------------------------------------------------------------------------
// nck build-graph
// ---------------------------------------------------------------------------

fn cmd_build_graph(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let run = (|| -> Result<(), String> {
        let input = take_flag(&mut args, "--in")?;
        let scale = take_flag(&mut args, "--scale")?;
        let out = take_flag(&mut args, "--out")?.ok_or("--out is required")?;
        let seed: u64 = match take_flag(&mut args, "--seed")? {
            Some(v) => parse_num(&v, "--seed")?,
            None => 42,
        };
        if let Some(junk) = args.first() {
            return Err(format!("unexpected argument {junk:?}"));
        }
        let started = Instant::now();
        let graph = match (input, scale) {
            (Some(path), None) => {
                let file =
                    std::fs::File::open(&path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
                let store = read_ntriples(std::io::BufReader::new(file))
                    .map_err(|e| format!("cannot parse {path}: {e}"))?;
                to_knowledge_graph(&store)
            }
            (None, Some(size)) => {
                let config = match size.as_str() {
                    "small" => ScaleConfig::small(seed),
                    "medium" => ScaleConfig::medium(seed),
                    "large" => ScaleConfig::large(seed),
                    _ => {
                        return Err(format!(
                            "--scale must be small, medium or large, got {size:?}"
                        ))
                    }
                };
                generate_scale(&config)
            }
            (Some(_), Some(_)) => return Err("--in and --scale are mutually exclusive".into()),
            (None, None) => return Err("one of --in or --scale is required".into()),
        };
        let build_secs = started.elapsed().as_secs_f64();
        let started = Instant::now();
        save_compact(&graph, &out).map_err(|e| format!("cannot write {out}: {e}"))?;
        let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
        eprintln!(
            "wrote {out}: {} nodes, {} stored edges, {bytes} bytes \
             (build {build_secs:.1}s, encode {:.1}s)",
            graph.num_nodes(),
            graph.num_stored_edges(),
            started.elapsed().as_secs_f64()
        );
        Ok(())
    })();
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

// ---------------------------------------------------------------------------
// nck query / nck batch
// ---------------------------------------------------------------------------

fn cmd_query(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let run = (|| -> Result<(), String> {
        let query_spec = take_flag(&mut args, "--query")?.ok_or("--query is required")?;
        let opts = parse_run_opts(&mut args)?;
        if opts.graph.is_empty() {
            return Err("--graph is required".into());
        }
        if let Some(junk) = args.first() {
            return Err(format!("unexpected argument {junk:?}"));
        }
        let service = load_service(&opts)?;
        let request = request_for_line(&query_spec, opts.top);
        let mut response = service.query(&request).map_err(|e| e.to_string())?;
        let secs = response.secs.take();
        if opts.json {
            // `secs` stays off the single-query wire format (the legacy
            // schema had no timing field).
            println!("{}", json::to_string(&response));
        } else {
            print_response(&response);
            println!("({:.3}s)", secs.unwrap_or(0.0));
        }
        Ok(())
    })();
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nck: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_batch(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let run = (|| -> Result<(), String> {
        let queries_path = take_flag(&mut args, "--queries")?.ok_or("--queries is required")?;
        let repeat: usize = match take_flag(&mut args, "--repeat")? {
            Some(v) => parse_num(&v, "--repeat")?,
            None => 1,
        };
        let mode = match take_flag(&mut args, "--mode")?.as_deref() {
            None | Some("engine") => WorkloadMode::Engine,
            Some("sequential") => WorkloadMode::Sequential,
            Some("compare") => WorkloadMode::Compare,
            Some(other) => {
                return Err(format!(
                    "--mode must be engine, sequential or compare, got {other:?}"
                ))
            }
        };
        let chunk: usize = match take_flag(&mut args, "--chunk")? {
            Some(v) => parse_num(&v, "--chunk")?,
            None => 0,
        };
        let clients: Option<usize> = match take_flag(&mut args, "--clients")? {
            Some(v) => {
                let n: usize = parse_num(&v, "--clients")?;
                if n == 0 {
                    return Err("--clients must be at least 1".into());
                }
                Some(n)
            }
            None => None,
        };
        let opts = parse_run_opts(&mut args)?;
        if opts.graph.is_empty() {
            return Err("--graph is required".into());
        }
        if let Some(junk) = args.first() {
            return Err(format!("unexpected argument {junk:?}"));
        }
        let text = std::fs::read_to_string(&queries_path)
            .map_err(|e| format!("cannot read {queries_path:?}: {e}"))?;
        let queries: Vec<QueryRequest> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| request_for_line(l, opts.top))
            .collect();
        if queries.is_empty() {
            return Err(format!("{queries_path}: no queries"));
        }
        let service = load_service(&opts)?;
        let request = WorkloadRequest {
            queries,
            repeat: repeat.max(1),
            mode,
            chunk,
            clients,
            threads: opts.threads,
            ppr_block_width: opts.ppr_block_width,
            score_sweep: opts.score_sweep,
        };
        let report = service.workload(&request).map_err(|e| e.to_string())?;
        if opts.json {
            println!("{}", json::to_string(&report));
        } else {
            print_workload(&report);
        }
        Ok(())
    })();
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nck: {e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// nck serve
// ---------------------------------------------------------------------------

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut args = args.to_vec();
    let run = (|| -> Result<(), String> {
        let addr = take_flag(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:4517".to_owned());
        let mut config = ServeConfig::default();
        if let Some(v) = take_flag(&mut args, "--workers")? {
            config.workers = parse_num(&v, "--workers")?;
            if config.workers == 0 {
                return Err("--workers must be at least 1".into());
            }
        }
        if let Some(v) = take_flag(&mut args, "--queue-depth")? {
            config.queue_depth = parse_num(&v, "--queue-depth")?;
        }
        if let Some(v) = take_flag(&mut args, "--max-connections")? {
            config.max_connections = parse_num(&v, "--max-connections")?;
        }
        if let Some(v) = take_flag(&mut args, "--max-frame-bytes")? {
            config.max_frame_bytes = parse_num(&v, "--max-frame-bytes")?;
        }
        if let Some(v) = take_flag(&mut args, "--default-deadline-ms")? {
            config.default_deadline_ms = Some(parse_num(&v, "--default-deadline-ms")?);
        }
        let opts = parse_run_opts(&mut args)?;
        if opts.graph.is_empty() {
            return Err("--graph is required".into());
        }
        if let Some(junk) = args.first() {
            return Err(format!("unexpected argument {junk:?}"));
        }
        let service = load_service(&opts)?;
        let handle = serve(std::sync::Arc::new(service), addr.as_str(), config)
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
        eprintln!(
            "serving on {} — EOF on stdin drains and exits",
            handle.addr()
        );
        // Scripted lifecycle: serve until stdin closes (`nck serve < /dev/null`
        // starts, drains and exits immediately; a pipe keeps it up until the
        // writer hangs up). No signal handling required.
        let mut sink = String::new();
        while std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut sink)
            .map(|n| n > 0)
            .unwrap_or(false)
        {
            sink.clear();
        }
        eprintln!("draining…");
        let metrics = handle.shutdown();
        if opts.json {
            println!("{}", json::to_string(&metrics));
        } else {
            print_serve_metrics(&metrics);
        }
        Ok(())
    })();
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("nck: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_serve_metrics(m: &ServeMetrics) {
    println!(
        "connections: {} accepted, {} rejected at the limit",
        m.connections_accepted, m.connections_rejected
    );
    println!(
        "requests:    {} admitted, {} shed, {} deadline misses, {} malformed frames",
        m.requests_admitted, m.requests_shed, m.deadline_misses, m.frames_malformed
    );
    println!(
        "responses:   {} ok, {} errors",
        m.responses_ok, m.responses_err
    );
}

// ---------------------------------------------------------------------------
// output
// ---------------------------------------------------------------------------

fn print_response(response: &QueryResponse) {
    println!("query: {}", response.query);
    println!(
        "context: {} nodes (top: {})",
        response.context_size,
        response
            .context
            .iter()
            .take(5)
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "{:<28} {:>8} {:>12} {:>12}",
        "label", "score", "inst-p", "card-p"
    );
    for c in &response.characteristics {
        println!(
            "{:<28} {:>8.3} {:>12} {:>12}",
            c.label,
            c.score,
            fmt_p(c.inst_p),
            fmt_p(c.card_p),
        );
    }
}

/// Per-cache counter table: one row per engine cache, with the shard
/// count, hit/miss/eviction counters, resident footprint and hit rate
/// that previously rode only the JSON wire report.
fn print_cache_stats(st: &notable_characteristics::api::EngineStatsReport) {
    if let Some(bytes) = st.graph_bytes {
        println!("graph:     ~{bytes} resident bytes");
    }
    println!(
        "{:<10} {:>7} {:>9} {:>9} {:>10} {:>9} {:>12} {:>9}",
        "cache", "shards", "hits", "misses", "evictions", "entries", "bytes", "hit rate"
    );
    for (name, s) in [
        ("result", &st.result_cache),
        ("context", &st.context_cache),
        ("ppr", &st.ppr_cache),
    ] {
        println!(
            "{:<10} {:>7} {:>9} {:>9} {:>10} {:>9} {:>12} {:>8.1}%",
            name,
            s.shards,
            s.hits,
            s.misses,
            s.evictions,
            s.len,
            s.bytes,
            s.hit_rate() * 100.0,
        );
    }
}

fn fmt_p(p: Option<f64>) -> String {
    match p {
        Some(p) => format!("{p:.4}"),
        None => "-".into(),
    }
}

fn print_workload(report: &WorkloadReport) {
    println!(
        "workload: {} queries ({} distinct lines × {})",
        report.queries, report.distinct_lines, report.repeat
    );
    if let Some(s) = report.engine_secs {
        println!(
            "engine:     {s:.3}s total, {:.1} queries/s",
            report.queries as f64 / s.max(1e-12)
        );
    }
    if let Some(s) = report.sequential_secs {
        println!(
            "sequential: {s:.3}s total, {:.1} queries/s",
            report.queries as f64 / s.max(1e-12)
        );
    }
    if let Some(speedup) = report.speedup {
        println!("speedup:    {speedup:.2}× (identical rankings verified)");
    }
    if let Some(st) = &report.engine_stats {
        println!(
            "engine stats: {} executed of {} submitted ({} deduplicated); \
             {} weight build(s)",
            st.executed,
            st.submitted,
            st.deduplicated,
            st.weight_builds.unwrap_or(0),
        );
        print_cache_stats(st);
    }
    if let Some(c) = &report.concurrent {
        println!(
            "concurrent: {} clients, {} queries in {:.3}s — {:.1} queries/s \
             (rankings verified identical to the single-client run)",
            c.clients, c.queries, c.secs, c.throughput
        );
        println!(
            "latency:    p50 {:.2}ms, p90 {:.2}ms, p99 {:.2}ms, max {:.2}ms",
            c.p50_ms, c.p90_ms, c.p99_ms, c.max_ms
        );
        println!(
            "coalesced:  {} results, {} contexts, {} ppr vectors \
             (duplicate in-flight work absorbed by single-flight)",
            c.stats.result_coalesced.unwrap_or(0),
            c.stats.context_coalesced.unwrap_or(0),
            c.stats.ppr_coalesced.unwrap_or(0),
        );
        print_cache_stats(&c.stats);
    }
    // Per distinct query line, the top characteristics of its first run.
    for response in &report.results {
        println!();
        print_response(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn take_flag_extracts_pair_and_leaves_rest() {
        let mut a = args(&["--graph", "g.nt", "--top", "5"]);
        assert_eq!(take_flag(&mut a, "--top").unwrap(), Some("5".into()));
        assert_eq!(a, args(&["--graph", "g.nt"]));
        assert_eq!(take_flag(&mut a, "--walks").unwrap(), None);
    }

    #[test]
    fn take_flag_rejects_missing_value() {
        let mut a = args(&["--top"]);
        assert!(take_flag(&mut a, "--top").is_err());
    }

    #[test]
    fn take_flag_rejects_duplicate_flag() {
        // Regression: the second occurrence used to be silently left in
        // `args`, where it was later misparsed as a positional argument.
        let mut a = args(&["--top", "5", "--top", "9"]);
        let err = take_flag(&mut a, "--top").unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn run_opts_reject_duplicate_flags_end_to_end() {
        let mut a = args(&["--graph", "a.nt", "--graph", "b.nt"]);
        assert!(parse_run_opts(&mut a).is_err());
    }

    #[test]
    fn graph_format_parses_both_values() {
        let mut a = args(&["--graph-format", "compact"]);
        assert_eq!(parse_run_opts(&mut a).unwrap().format, GraphFormat::Compact);
        let mut a = args(&["--graph-format", "nt"]);
        assert_eq!(
            parse_run_opts(&mut a).unwrap().format,
            GraphFormat::Ntriples
        );
        let mut a = args(&[]);
        assert_eq!(
            parse_run_opts(&mut a).unwrap().format,
            GraphFormat::Ntriples,
            "nt is the default"
        );
    }

    #[test]
    fn unknown_graph_format_is_rejected_with_the_choices() {
        let mut a = args(&["--graph-format", "parquet"]);
        let err = parse_run_opts(&mut a).unwrap_err();
        assert!(err.contains("must be nt or compact"), "{err}");
        assert!(err.contains("parquet"), "{err}");
    }

    #[test]
    fn backend_accepts_compact_and_names_the_choices_on_error() {
        let mut a = args(&["--backend", "compact"]);
        assert_eq!(
            parse_run_opts(&mut a).unwrap().backend,
            Some(Backend::Compact)
        );
        let mut a = args(&[]);
        assert_eq!(
            parse_run_opts(&mut a).unwrap().backend,
            None,
            "only an explicit --backend is recorded"
        );
        let mut a = args(&["--backend", "jena"]);
        let err = parse_run_opts(&mut a).unwrap_err();
        assert!(err.contains("csr, store or compact"), "{err}");
    }

    #[test]
    fn score_sweep_parses_on_off_and_rejects_junk() {
        let mut a = args(&["--score-sweep", "off"]);
        assert_eq!(parse_run_opts(&mut a).unwrap().score_sweep, Some(false));
        let mut a = args(&["--score-sweep", "on"]);
        assert_eq!(parse_run_opts(&mut a).unwrap().score_sweep, Some(true));
        let mut a = args(&[]);
        assert_eq!(
            parse_run_opts(&mut a).unwrap().score_sweep,
            None,
            "only an explicit --score-sweep is recorded"
        );
        let mut a = args(&["--score-sweep", "maybe"]);
        let err = parse_run_opts(&mut a).unwrap_err();
        assert!(err.contains("must be on or off"), "{err}");
    }

    #[test]
    fn duplicate_graph_format_is_rejected() {
        let mut a = args(&["--graph-format", "nt", "--graph-format", "compact"]);
        let err = parse_run_opts(&mut a).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }
}
