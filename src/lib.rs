//! # notable-characteristics
//!
//! A Rust reproduction of *"Notable Characteristics Search through
//! Knowledge Graphs"* (Mottin, Grasnick, Kroschk, Siegler, Müller — EDBT
//! 2018, arXiv:1802.04060).
//!
//! Given a small set of query entities in a knowledge graph, the system
//!
//! 1. retrieves a **context set** — the top-k nodes most similar to the
//!    query, via metapath-constrained random walks (`ContextRW`) or a
//!    frequency-weighted Personalized PageRank baseline (`RandomWalk`);
//! 2. flags **notable characteristics** — edge labels whose value
//!    (*instance*) or count (*cardinality*) distribution over the query
//!    deviates significantly from the context's, under an exact /
//!    Monte-Carlo multinomial test (`FindNC`).
//!
//! This crate is the façade over the workspace:
//!
//! - [`api`] — the serde-first service layer: build an
//!   [`NckService`](api::NckService) over a dataset once, then answer
//!   [`QueryRequest`](api::QueryRequest)s, batches, streams and
//!   benchmark workloads through one stable request/response schema,
//!   with the backend chosen at runtime;
//! - [`graph`] — knowledge-graph substrate: the dictionary-encoded CSR
//!   [`KnowledgeGraph`](graph::KnowledgeGraph), the backend-generic
//!   [`GraphAccess`](graph::GraphAccess) trait the algorithms run
//!   against, and the [`ErasedGraph`](graph::ErasedGraph) runtime-erasure
//!   adapter the service layer builds on;
//! - [`store`] — triple-store substrate (SPO/POS/OSP indexes), including
//!   [`StoreGraph`](store::StoreGraph), the `GraphAccess` backend that
//!   answers traversals straight from the indexes without materializing
//!   the graph;
//! - [`serve`] — the socket front door: `nck serve` puts the service
//!   behind length-prefixed framed JSON over TCP, with bounded admission,
//!   per-request deadlines and graceful drain — answers are id-for-id
//!   what the in-process service returns;
//! - [`stats`] — statistics substrate (multinomial test, divergences);
//! - [`core`] — the paper's algorithms;
//! - [`datagen`] — seeded synthetic YAGO-like / LinkedMDB-like data;
//! - [`eval`] — the experiment harness reproducing every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use notable_characteristics::prelude::*;
//!
//! // Build the paper's Figure-1 graph: politicians, studies, children.
//! let mut b = GraphBuilder::new();
//! b.add_triple("Merkel", "studied", "Physics");
//! for (p, domain) in [("Putin", "Law"), ("Renzi", "Law"), ("Hollande", "Law")] {
//!     b.add_triple(p, "studied", domain);
//! }
//! for (p, c) in [
//!     ("Obama", "Malia"), ("Putin", "Mariya"), ("Renzi", "Ester"),
//!     ("Renzi", "Emanuele"), ("Hollande", "Thomas"), ("Hollande", "Clemence"),
//! ] {
//!     b.add_triple(p, "hasChild", c);
//! }
//! let graph = b.build();
//!
//! // Query: {Merkel, Obama}; context: the other leaders.
//! let query = Query::by_names(&graph, ["Merkel", "Obama"]).unwrap();
//! let context_nodes: Vec<_> = ["Putin", "Renzi", "Hollande"]
//!     .iter().map(|n| graph.node_by_name(n).unwrap()).collect();
//! let context = Context::from_nodes(&context_nodes);
//!
//! // Find notable characteristics against that context.
//! let findnc = FindNc::new(FindNcConfig::default());
//! let result = findnc.discover_with_context(&graph, &query, &context).unwrap();
//! // "Merkel has no child" style deviations surface as notable labels.
//! assert!(result.characteristics.iter().any(|c| {
//!     graph.label_name(c.label) == "hasChild" && c.score > 0.0
//! }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nck_api as api;
pub use nck_core as core;
pub use nck_datagen as datagen;
pub use nck_engine as engine;
pub use nck_eval as eval;
pub use nck_graph as graph;
pub use nck_serve as serve;
pub use nck_stats as stats;
pub use nck_store as store;

/// Compiles and runs `README.md`'s code blocks as doctests, so the
/// quickstart can never rot (`cargo test --doc` exercises it; the
/// rendered docs omit this item).
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
pub struct ReadmeDoctests;

/// Commonly used items, re-exported for `use notable_characteristics::prelude::*`.
pub mod prelude {
    pub use nck_api::{
        ApiError, Backend, NckService, QueryRequest, QueryResponse, WorkloadReport, WorkloadRequest,
    };
    pub use nck_core::config::{ContextRwConfig, FindNcConfig, PathMiningConfig, PprConfig};
    pub use nck_core::context::{Context, ContextSelector, TypeFilter};
    pub use nck_core::context_rw::ContextRw;
    pub use nck_core::findnc::{FindNc, NotableCharacteristic, SearchResult};
    pub use nck_core::ppr::{EdgeWeights, PersonalizedPageRank, RandomWalkSelector};
    pub use nck_core::query::Query;
    pub use nck_core::score::{ScoreVec, SparseWorkspace};
    pub use nck_engine::{EngineConfig, QueryEngine, SelectorMode};
    pub use nck_graph::{
        DynGraphAccess, EdgeLabelId, ErasedGraph, GraphAccess, GraphBuilder, KnowledgeGraph, NodeId,
    };
    pub use nck_stats::MultinomialTest;
    pub use nck_store::StoreGraph;
}
