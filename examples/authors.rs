//! The paper's second test case (§4.2): {Douglas Adams, Terry Pratchett}.
//!
//! Both query authors influence the same thrice-influenced writer — an
//! unexpected shared pattern that FindNC flags — while their `created`
//! works are all their own, just like every other author's, and stay
//! un-notable.
//!
//! ```text
//! cargo run --release --example authors
//! ```

#![forbid(unsafe_code)]

use notable_characteristics::datagen::ground_truth::{simulate_crowd, CrowdConfig};
use notable_characteristics::datagen::{generate, planted, GeneratorConfig};
use notable_characteristics::prelude::*;

fn main() {
    println!("generating the YAGO-like dataset…");
    let dataset = generate(&GeneratorConfig::yago_like(42).scaled(0.5));
    let graph = &dataset.graph;

    let case = planted::authors_case();
    let query = Query::new(graph, dataset.query_nodes(&case.query)).expect("anchors exist");
    println!(
        "query: {:?}, |C| = {}\n",
        case.query.names, case.context_size
    );

    // Reference context: the simulated crowd's top-30 writers (see
    // nck_datagen::planted for why cases use the reference context).
    let gt = simulate_crowd(&dataset, &case.query, &CrowdConfig::default());
    let context_nodes: Vec<_> = gt.ranked.iter().copied().take(case.context_size).collect();
    let context = Context::from_nodes(&context_nodes);
    println!("context (top {} ground-truth writers):", context.len());
    for node in context.nodes().take(10) {
        println!("  {}", graph.node_name(node));
    }

    let findnc = FindNc::new(FindNcConfig {
        context_size: case.context_size,
        ..FindNcConfig::default()
    });
    let result = findnc
        .discover_with_context(graph, &query, &context)
        .expect("discovery succeeds");

    println!(
        "\n{}",
        notable_characteristics::core::explain::report(graph, &result, query.len())
    );

    let influences = result.characteristic("influences", graph).expect("scored");
    let created = result.characteristic("created", graph).expect("scored");
    println!(
        "influences -> {} | created -> {}",
        if influences.notable() {
            "NOTABLE ✓ (shared influence target)"
        } else {
            "not notable ✗"
        },
        if created.notable() {
            "NOTABLE ✗"
        } else {
            "not notable ✓ (own works, like everyone)"
        },
    );
}
