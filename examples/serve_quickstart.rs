//! Serve quickstart: the Figure-1 scenario over a real TCP socket.
//!
//! Stands up the same [`NckService`] as `examples/quickstart.rs`, puts it
//! behind `nck-serve` on an ephemeral port, and asks the notable
//! characteristics of {Angela Merkel, Barack Obama} through a client
//! socket — then verifies the served answer is **id-for-id the
//! in-process answer**, shows a typed error (unknown entity) arriving
//! over the wire, and drains the server gracefully.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```
//!
//! To talk to a standalone server instead, run `nck serve` in one shell
//! and point [`ServeClient`] (or any 4-byte-big-endian-length + JSON
//! client) at its address.

#![forbid(unsafe_code)]

use notable_characteristics::prelude::*;
use notable_characteristics::serve::{serve, ClientError, ServeClient, ServeConfig};
use std::sync::Arc;

fn main() {
    // ---- the same Figure-1 service as examples/quickstart.rs ----------
    let mut b = GraphBuilder::new();
    b.add_triple("Angela Merkel", "studied", "Physics");
    for (leader, subject) in [
        ("Vladimir Putin", "Law"),
        ("Matteo Renzi", "Law"),
        ("François Hollande", "Law"),
    ] {
        b.add_triple(leader, "studied", subject);
    }
    for (parent, child) in [
        ("Barack Obama", "Malia"),
        ("Vladimir Putin", "Mariya"),
        ("Matteo Renzi", "Ester"),
        ("Matteo Renzi", "Emanuele"),
        ("François Hollande", "Thomas"),
        ("François Hollande", "Clémence"),
    ] {
        b.add_triple(parent, "hasChild", child);
    }
    let mut leaders = vec![
        "Angela Merkel".to_owned(),
        "Barack Obama".to_owned(),
        "Vladimir Putin".to_owned(),
        "Matteo Renzi".to_owned(),
        "François Hollande".to_owned(),
    ];
    for i in 0..20 {
        let name = format!("Leader {i}");
        b.add_triple(&name, "studied", "Law");
        b.add_triple(&name, "hasChild", &format!("Child {i}"));
        leaders.push(name);
    }
    for leader in &leaders {
        b.add_triple(leader, "memberOf", "G20");
    }

    let mut config = EngineConfig::default();
    config.findnc.context.mining = PathMiningConfig {
        walks: 6_000,
        ..PathMiningConfig::default()
    };
    config.findnc.context.type_filter = TypeFilter::None;
    config.findnc.context_size = 23;

    let service = Arc::new(
        NckService::builder()
            .knowledge_graph(b.build())
            .engine(config)
            .build()
            .expect("service builds"),
    );

    // ---- behind a socket ----------------------------------------------
    // Port 0 = ephemeral; handle.addr() reports what the OS picked.
    let handle =
        serve(Arc::clone(&service), "127.0.0.1:0", ServeConfig::default()).expect("server binds");
    println!("serving on {}", handle.addr());

    let mut client = ServeClient::connect(handle.addr()).expect("client connects");
    let mut request = QueryRequest::entities(["Angela Merkel", "Barack Obama"]);
    request.top = Some(10);

    let mut served = client.call(&request).expect("served query succeeds");
    println!("\nquery: {}", served.query);
    println!("{:<16} {:>8}  notable", "label", "score");
    for c in &served.characteristics {
        println!("{:<16} {:>8.3}  {}", c.label, c.score, c.notable);
    }

    // The socket adds transport, not semantics: modulo the timing field,
    // the served response is identical to the in-process one.
    let mut local = service.query(&request).expect("in-process query succeeds");
    served.secs = None;
    local.secs = None;
    assert_eq!(served, local, "served answer must be id-for-id in-process");
    println!("\n✓ served answer is id-for-id the in-process answer");

    // Errors arrive typed, not as prose: the `error` code distinguishes
    // an unknown entity from an overload shed from a malformed frame.
    let bad = QueryRequest::entities(["Angela Merkel", "Elvis"]);
    match client.call(&bad) {
        Err(ClientError::Api(body)) => {
            println!(
                "✓ typed error over the wire: [{}] {}",
                body.error, body.message
            );
            assert_eq!(body.error, "unknown_entity");
        }
        other => panic!("expected a typed API error, got {other:?}"),
    }

    // ---- graceful drain -----------------------------------------------
    let metrics = handle.shutdown();
    println!(
        "\ndrained: {} admitted, {} ok, {} errors, {} shed",
        metrics.requests_admitted,
        metrics.responses_ok,
        metrics.responses_err,
        metrics.requests_shed
    );
    assert_eq!(metrics.responses_ok, 1);
    assert_eq!(metrics.responses_err, 1);
    assert_eq!(metrics.requests_shed, 0, "nothing shed on an idle server");
}
