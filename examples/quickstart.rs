//! Quickstart: the paper's Figure-1 scenario through the `nck-api`
//! service façade.
//!
//! Builds the knowledge graph of Figure 1 (G20 leaders, their studies and
//! children), stands up an [`NckService`] over it, and asks for the
//! notable characteristics of {Angela Merkel, Barack Obama}. The full
//! pipeline runs: metapath-constrained random walks retrieve the other
//! leaders as the context, and the discrimination test surfaces the
//! headline finding that Angela Merkel has no children while the context
//! leaders do. The same response is printed once as a table and once in
//! the service's JSON wire format.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]

use notable_characteristics::prelude::*;

fn main() {
    // ---- Figure 1's knowledge graph -----------------------------------
    let mut b = GraphBuilder::new();
    b.add_triple("Angela Merkel", "studied", "Physics");
    for (leader, subject) in [
        ("Vladimir Putin", "Law"),
        ("Matteo Renzi", "Law"),
        ("François Hollande", "Law"),
    ] {
        b.add_triple(leader, "studied", subject);
    }
    for (parent, child) in [
        ("Barack Obama", "Malia"),
        ("Barack Obama", "Sasha"),
        ("Vladimir Putin", "Mariya"),
        ("Vladimir Putin", "Yecaterina"),
        ("Matteo Renzi", "Ester"),
        ("Matteo Renzi", "Emanuele"),
        ("Matteo Renzi", "Francesca"),
        ("François Hollande", "Thomas"),
        ("François Hollande", "Clémence"),
        ("François Hollande", "Flora"),
        ("François Hollande", "Julien"),
    ] {
        b.add_triple(parent, "hasChild", child);
    }
    // A few more leaders so the context distribution has some mass, and
    // the shared G20 membership the mined metapaths traverse to reach
    // them from the query.
    let mut leaders = vec![
        "Angela Merkel".to_owned(),
        "Barack Obama".to_owned(),
        "Vladimir Putin".to_owned(),
        "Matteo Renzi".to_owned(),
        "François Hollande".to_owned(),
    ];
    for i in 0..20 {
        let name = format!("Leader {i}");
        b.add_triple(&name, "studied", "Law");
        b.add_triple(&name, "hasChild", &format!("Child {i}"));
        if i % 2 == 0 {
            b.add_triple(&name, "hasChild", &format!("Second Child {i}"));
        }
        leaders.push(name);
    }
    for leader in &leaders {
        b.add_triple(leader, "memberOf", "G20");
    }
    let graph = b.build();
    println!(
        "graph: {} nodes, {} logical edges\n",
        graph.num_nodes(),
        graph.num_logical_edges()
    );

    // ---- the service façade -------------------------------------------
    let mut config = EngineConfig::default();
    config.findnc.context.mining = PathMiningConfig {
        walks: 6_000,
        ..PathMiningConfig::default()
    };
    config.findnc.context.type_filter = TypeFilter::None; // untyped toy graph
    config.findnc.context_size = 23; // every leader except the query pair

    let service = NckService::builder()
        .knowledge_graph(graph)
        .engine(config)
        .build()
        .expect("service builds");

    // ---- one query through the one front door -------------------------
    let mut request = QueryRequest::entities(["Angela Merkel", "Barack Obama"]);
    request.top = Some(10);
    let response = service.query(&request).expect("query succeeds");

    println!("query: {}", response.query);
    println!(
        "context ({} nodes): {}, …",
        response.context_size,
        response.context[..5.min(response.context.len())].join(", ")
    );
    println!("{:<16} {:>8}  notable", "label", "score");
    for c in &response.characteristics {
        println!("{:<16} {:>8.3}  {}", c.label, c.score, c.notable);
    }

    let has_child = response
        .characteristic("hasChild")
        .expect("hasChild scored");
    assert!(
        has_child.notable,
        "the Figure-1 headline: Merkel's missing children must be notable"
    );
    println!("\n✓ `hasChild` flagged notable — the paper's Figure-1 example reproduced.");

    // ---- the same answer, in the service's wire format ----------------
    println!(
        "\nas JSON: {}",
        notable_characteristics::api::json::to_string(&response)
    );
}
