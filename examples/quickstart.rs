//! Quickstart: the paper's Figure-1 scenario on a hand-built graph.
//!
//! Builds the knowledge graph of Figure 1 (country leaders, their studies
//! and children), asks for the notable characteristics of
//! {Angela Merkel, Barack Obama} against the other leaders, and prints the
//! ranked explanation — including the headline finding that Angela Merkel
//! has no children while the context leaders do.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use notable_characteristics::prelude::*;

fn main() {
    // ---- Figure 1's knowledge graph -----------------------------------
    let mut b = GraphBuilder::new();
    b.add_triple("Angela Merkel", "studied", "Physics");
    for (leader, subject) in [
        ("Vladimir Putin", "Law"),
        ("Matteo Renzi", "Law"),
        ("François Hollande", "Law"),
    ] {
        b.add_triple(leader, "studied", subject);
    }
    for (parent, child) in [
        ("Barack Obama", "Malia"),
        ("Barack Obama", "Sasha"),
        ("Vladimir Putin", "Mariya"),
        ("Vladimir Putin", "Yecaterina"),
        ("Matteo Renzi", "Ester"),
        ("Matteo Renzi", "Emanuele"),
        ("Matteo Renzi", "Francesca"),
        ("François Hollande", "Thomas"),
        ("François Hollande", "Clémence"),
        ("François Hollande", "Flora"),
        ("François Hollande", "Julien"),
    ] {
        b.add_triple(parent, "hasChild", child);
    }
    // A few more leaders so the context distribution has some mass.
    for i in 0..20 {
        let name = format!("Leader {i}");
        b.add_triple(&name, "studied", "Law");
        b.add_triple(&name, "hasChild", &format!("Child {i}"));
        if i % 2 == 0 {
            b.add_triple(&name, "hasChild", &format!("Second Child {i}"));
        }
    }
    let graph = b.build();
    println!(
        "graph: {} nodes, {} logical edges\n",
        graph.num_nodes(),
        graph.num_logical_edges()
    );

    // ---- the query and its context ------------------------------------
    let query =
        Query::by_names(&graph, ["Angela Merkel", "Barack Obama"]).expect("query entities exist");
    let mut context_names: Vec<String> = vec![
        "Vladimir Putin".into(),
        "Matteo Renzi".into(),
        "François Hollande".into(),
    ];
    context_names.extend((0..20).map(|i| format!("Leader {i}")));
    let context = Context::from_names(&graph, &context_names).expect("context entities exist");

    // ---- notable characteristics --------------------------------------
    let findnc = FindNc::new(FindNcConfig::default());
    let result = findnc
        .discover_with_context(&graph, &query, &context)
        .expect("discovery succeeds");

    println!(
        "{}",
        notable_characteristics::core::explain::report(&graph, &result, query.len())
    );

    let has_child = result
        .characteristic("hasChild", &graph)
        .expect("hasChild scored");
    assert!(
        has_child.notable(),
        "the Figure-1 headline: Merkel's missing children must be notable"
    );
    println!("✓ `hasChild` flagged notable — the paper's Figure-1 example reproduced.");
}
