//! The introduction's e-commerce motivation: *"Imagine a user compares two
//! cameras and wants to know what are the special features of these two
//! with respect to all the others."*
//!
//! Builds a small product knowledge graph of cameras with typed feature
//! edges and discovers what makes the two queried models special — the
//! method is domain-independent, exactly as the paper argues.
//!
//! ```text
//! cargo run --release --example cameras
//! ```

#![forbid(unsafe_code)]

use notable_characteristics::prelude::*;

fn main() {
    let mut b = GraphBuilder::new();

    // 40 ordinary cameras: one mount, a common sensor, 1–2 lenses.
    for i in 0..40 {
        let name = format!("Camera M{i:02}");
        b.add_triple(
            &name,
            "hasSensor",
            if i % 3 == 0 { "APS-C" } else { "Full Frame" },
        );
        b.add_triple(&name, "hasMount", "E-Mount");
        b.add_triple(&name, "supportsLens", &format!("Lens {}", i % 7));
        if i % 2 == 0 {
            b.add_triple(&name, "supportsLens", &format!("Lens {}", (i + 3) % 7));
        }
        b.add_triple(
            &name,
            "madeBy",
            if i % 2 == 0 {
                "Acme Optics"
            } else {
                "Lumen Werke"
            },
        );
        if i % 5 != 0 {
            b.add_triple(&name, "hasViewfinder", "Electronic");
        }
        let n = b.node(&name);
        b.set_type(n, "camera");
    }
    // The two queried cameras: global-shutter sensors (rare!), many lenses.
    for name in ["Camera X1", "Camera X2"] {
        b.add_triple(name, "hasSensor", "Global Shutter");
        b.add_triple(name, "hasMount", "E-Mount");
        for lens in 0..5 {
            b.add_triple(name, "supportsLens", &format!("Lens {lens}"));
        }
        b.add_triple(name, "madeBy", "Acme Optics");
        b.add_triple(name, "hasViewfinder", "Electronic");
        let n = b.node(name);
        b.set_type(n, "camera");
    }
    // One ordinary camera also has a global-shutter sensor, so the rare
    // value exists in the context support.
    b.add_triple("Camera M00", "hasSensor", "Global Shutter");

    let graph = b.build();
    let query = Query::by_names(&graph, ["Camera X1", "Camera X2"]).unwrap();
    let context_names: Vec<String> = (0..40).map(|i| format!("Camera M{i:02}")).collect();
    let context = Context::from_names(&graph, &context_names).unwrap();

    let findnc = FindNc::new(FindNcConfig::default());
    let result = findnc
        .discover_with_context(&graph, &query, &context)
        .expect("discovery succeeds");

    println!(
        "{}",
        notable_characteristics::core::explain::report(&graph, &result, query.len())
    );

    let sensor = result.characteristic("hasSensor", &graph).unwrap();
    let mount = result.characteristic("hasMount", &graph).unwrap();
    assert!(
        sensor.notable(),
        "the rare global-shutter sensor is the notable feature"
    );
    assert!(!mount.notable(), "the ubiquitous mount must not be notable");
    println!("✓ the cameras' special feature (global-shutter sensor) was discovered.");
}
