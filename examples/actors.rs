//! The paper's main test case (§4.2, Figures 7–9): the 5-actor query on
//! the synthetic YAGO-like knowledge graph.
//!
//! Runs the full pipeline — PathMining, ContextRW context selection, then
//! the multinomial discrimination — and prints the mined metapaths, the
//! retrieved context, and the ranked notable characteristics.
//!
//! ```text
//! cargo run --release --example actors
//! ```

#![forbid(unsafe_code)]

use nck_core::context_rw::ContextRw;
use notable_characteristics::datagen::{generate, GeneratorConfig};
use notable_characteristics::prelude::*;

fn main() {
    println!("generating the YAGO-like dataset…");
    let dataset = generate(&GeneratorConfig::yago_like(42).scaled(0.5));
    let graph = &dataset.graph;
    println!(
        "graph: {} nodes, {} logical edges, {} edge labels\n",
        graph.num_nodes(),
        graph.num_logical_edges(),
        graph.labels().len()
    );

    let spec = notable_characteristics::datagen::queries::actors5_query();
    let query = Query::new(graph, dataset.query_nodes(&spec)).expect("anchors exist");
    println!("query: {:?}\n", spec.names);

    // Context selection with the mined metapaths made visible.
    let config = FindNcConfig {
        context: ContextRwConfig {
            mining: PathMiningConfig {
                walks: 150_000,
                ..PathMiningConfig::default()
            },
            ..ContextRwConfig::default()
        },
        context_size: 100,
        ..FindNcConfig::default()
    };
    let selector = ContextRw::new(config.context.clone());
    let (context, mined) = selector
        .select_with_metapaths(graph, &query, config.context_size)
        .expect("context selection succeeds");

    println!("top mined metapaths:");
    for (metapath, count) in mined.ranked().iter().take(8) {
        println!("  {count:>7}  {}", metapath.display(graph));
    }
    println!("\ncontext ({} nodes), top 15:", context.len());
    for &(node, score) in context.ranked().iter().take(15) {
        println!("  {score:.4}  {}", graph.node_name(node));
    }

    let findnc = FindNc::new(config);
    let result = findnc
        .discover_with_context(graph, &query, &context)
        .expect("discovery succeeds");
    println!(
        "\n{}",
        notable_characteristics::core::explain::report(graph, &result, query.len())
    );

    let created = result.characteristic("created", graph).expect("scored");
    println!(
        "`created` significance: inst {:?} / card {:?} -> {}",
        created.inst_significance,
        created.card_significance,
        if created.notable() {
            "NOTABLE (the Figure-7 finding)"
        } else {
            "not notable"
        }
    );
}
